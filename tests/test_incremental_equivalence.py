"""Equivalence of the incremental pipeline with full per-round rescans.

Two layers of guarantees:

1. **Incremental on == incremental off, everywhere.**  The dirty-region
   caches (:mod:`repro.core.incremental`), the localized connectivity
   check, and the cached run location must never change a trajectory —
   moves, rounds, merges, and events are compared bit-for-bit across a
   mixed scenario set covering every generator family.

2. **Both match the seed implementation** (commit aa9a9e6, captured in
   ``tests/data/golden_trajectories.json`` by ``tools/make_goldens.py``)
   — except where this PR's *run-start bugfix* intentionally changed
   behavior: on contours short enough that every start site sees every
   other (cycle length <= 2*viewing_radius + 2), sites are now admitted
   unconditionally as in the paper, because the seed's spacing filter
   could livelock such contours and only escaped through accidental
   hash-order entropy in its (non-canonical) boundary enumeration.  The
   scenarios whose trajectories or run lifecycles legitimately changed
   are listed explicitly below so any *unintended* divergence still
   fails.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.config import AlgorithmConfig
from repro.engine.executors import subinterp_available

from tools.make_goldens import SCENARIOS, run_scenario

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "golden_trajectories.json"
)

#: Scenarios whose *moves* changed: hole-bearing swarms whose endgame (or
#: whole life, for small rings) runs in the short-contour regime where the
#: run-start bugfix admits more sites.  Everything else must be move-exact
#: vs the seed.
TRAJECTORY_CHANGED = {"ring12", "ring_72", "ring_160", "spiral_160"}

#: Scenarios with extra run_start/run_stop events from unconditional
#: short-contour starts (moves still bit-identical to the seed).
RUN_EVENTS_CHANGED = TRAJECTORY_CHANGED | {
    "blob_24",
    "blob_72",
    "diamond_ring6",
    "double_donut12",
    "h_9x5",
    "l_corridor10",
    "plus_24",
    "ring9_t2",
    "ring_24",
    "solid_24",
    "solid_72",
    "tree_24",
    "tree_72",
}

STATE_KEYS = ("rounds", "gathered", "robots_final", "final", "state_hashes")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_incremental_matches_full_and_seed(name, golden):
    on = run_scenario(SCENARIOS[name], AlgorithmConfig(incremental=True))
    off = run_scenario(SCENARIOS[name], AlgorithmConfig(incremental=False))

    # Layer 1: the incremental pipeline is bit-identical to full rescans.
    assert on == off, f"{name}: incremental mode changed the trajectory"

    # Sharded planning (threaded per-run shards + deterministic reduce)
    # must not change anything either — with or without the incremental
    # caches underneath.
    sharded = run_scenario(
        SCENARIOS[name],
        AlgorithmConfig(incremental=True, shard_planning=True),
    )
    assert sharded == on, f"{name}: sharded planning changed the trajectory"

    # Layer 2: bit-identical to the seed implementation, modulo the
    # documented run-start bugfix.
    gold = golden[name]
    if name in TRAJECTORY_CHANGED:
        assert on["gathered"], f"{name}: must still gather"
    else:
        for key in STATE_KEYS:
            assert on[key] == gold[key], f"{name}: {key} diverged from seed"
        # fold/merge events are derived from the moves: always preserved
        assert on["core_event_hashes"] == gold["core_event_hashes"]
        if name not in RUN_EVENTS_CHANGED:
            assert on["event_hashes"] == gold["event_hashes"], (
                f"{name}: run lifecycle events diverged from seed"
            )


# ----------------------------------------------------------------------
# Executor backend matrix: every ``cfg.shard_backend`` × incremental
# on/off must be bit-identical to serial planning.  The full scenario
# sweep above already covers thread × incremental-on; this matrix drives
# the remaining combinations (including the process backend's
# shared-memory snapshot encode/decode round-trip) over a representative
# subset spanning holes, trees, corridors, and merge-heavy blobs.
# ----------------------------------------------------------------------
BACKEND_SCENARIOS = (
    "ring12",
    "solid_24",
    "double_donut12",
    "tree_24",
    "l_corridor10",
    "blob_24",
)

BACKENDS = ["thread", "process"] + (
    ["subinterp"] if subinterp_available() else []
)


@pytest.fixture(scope="module")
def backend_baselines():
    """Serial trajectories for the backend matrix, one per
    (scenario, incremental) combination."""
    return {
        (name, incremental): run_scenario(
            SCENARIOS[name], AlgorithmConfig(incremental=incremental)
        )
        for name in BACKEND_SCENARIOS
        for incremental in (True, False)
    }


@pytest.mark.parametrize("incremental", [True, False])
@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matrix_bit_identical(
    backend, incremental, backend_baselines
):
    for name in BACKEND_SCENARIOS:
        sharded = run_scenario(
            SCENARIOS[name],
            AlgorithmConfig(
                incremental=incremental,
                shard_planning=True,
                shard_backend=backend,
                shard_workers=2,
            ),
        )
        assert sharded == backend_baselines[(name, incremental)], (
            f"{name}: backend {backend!r} (incremental={incremental}) "
            f"changed the trajectory"
        )


def test_subinterp_unavailable_degrades_cleanly():
    """Where the interpreter lacks InterpreterPoolExecutor the backend
    must fail with a message naming the alternatives, not mid-round."""
    from repro.engine.executors import (
        ExecutorUnavailable,
        make_plan_executor,
    )

    if subinterp_available():
        pytest.skip("interpreter has subinterpreter executors")
    with pytest.raises(ExecutorUnavailable, match="process"):
        make_plan_executor("subinterp", 2)


def test_full_connectivity_mode_identical():
    """The localized connectivity check never changes behavior: force the
    full BFS via the engine knob and compare a hole-bearing scenario."""
    from repro.core.algorithm import GatherOnGrid
    from repro.engine.scheduler import FsyncEngine
    from repro.grid.occupancy import SwarmState
    from repro.swarms.generators import ring

    def run(incremental_connectivity):
        ctrl = GatherOnGrid()
        eng = FsyncEngine(
            SwarmState(ring(10)),
            ctrl,
            incremental_connectivity=incremental_connectivity,
        )
        states = []
        while not eng.state.is_gathered() and eng.round_index < 300:
            eng.step()
            states.append(eng.state.frozen())
        return states

    assert run(True) == run(False)
