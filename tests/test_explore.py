"""The scheduler-nondeterminism explorer (repro.explore).

Layers under test:

1. **Canonical forms** — translation/D4 normalization of cell sets and
   the full state key (cells + run table + phase): invariance under
   shifts, soundness of the run-id ranking, phase arithmetic.
2. **Exhaustive closure** — pinned node/edge/status counts for small
   seeds, including the automatically rediscovered SSYNC connectivity
   counterexample (the L-tetromino breaks at depth 1) and the FSYNC
   anchor (the full-activation path reproduces engine rounds).
3. **Witnesses** — DAG paths become concrete token schedules that the
   stock SSYNC scheduler replays bit-identically; JSONL round-trip and
   a committed golden witness file guard the format.
4. **Worst-case analysis** — longest-schedule extraction and livelock
   (cycle) detection, with and without stall edges.
5. **Beam mode** — seeded, deterministic, explicitly truncated.
6. **Certification** — the machine-checked bound-table sweep used by
   the CI job, at tier-1 sizes (n <= 4).
7. **Viz + CLI** — DOT/HTML export and the ``explore``/``certify``
   subcommands.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core.config import AlgorithmConfig
from repro.errors import InvariantError
from repro.explore import (
    build_witness,
    canonical_state_key,
    explore,
    load_witness,
    round_phase,
    save_witness,
    verify_witness,
)
from repro.grid.canonical import (
    apply_d4,
    d4_normal_form,
    occupancy_key,
    translation_normal_form,
)

CFG = AlgorithmConfig()

#: The paper-documented SSYNC counterexample seed: an L-tetromino whose
#: corner is an articulation point a partial activation can strand.
L_TETROMINO = [(0, 0), (0, 1), (0, 2), (1, 0)]
LINE4 = [(0, 0), (0, 1), (0, 2), (0, 3)]


# ----------------------------------------------------------------------
# 1. canonical forms
# ----------------------------------------------------------------------
class TestCanonicalForms:
    def test_translation_normal_form_rebases_to_origin(self):
        normal, offset = translation_normal_form([(7, 9), (8, 9), (7, 10)])
        assert normal == ((0, 0), (0, 1), (1, 0))
        assert offset == (7, 9)

    def test_translation_invariance(self):
        base = [(0, 0), (1, 0), (1, 1), (2, 1)]
        for dx, dy in [(3, -2), (-100, 41), (0, 0)]:
            shifted = [(x + dx, y + dy) for x, y in base]
            assert (
                translation_normal_form(shifted)[0]
                == translation_normal_form(base)[0]
            )

    def test_d4_normal_form_identifies_all_eight_images(self):
        base = L_TETROMINO
        forms = {
            d4_normal_form([apply_d4(i, c) for c in base]) for i in range(8)
        }
        assert len(forms) == 1

    def test_d4_separates_distinct_free_shapes(self):
        assert d4_normal_form(LINE4) != d4_normal_form(L_TETROMINO)

    def test_occupancy_key_symmetry_levels(self):
        a = [(5, 5), (5, 6), (6, 5)]
        b = [(0, 0), (0, 1), (1, 0)]
        assert occupancy_key(a, symmetry="none") != occupancy_key(
            b, symmetry="none"
        )
        assert occupancy_key(a, symmetry="translation") == occupancy_key(
            b, symmetry="translation"
        )
        with pytest.raises(ValueError, match="symmetry"):
            occupancy_key(a, symmetry="affine")

    def test_state_key_translation_invariant(self):
        empty = {"next_id": 0, "runs": []}
        key0, off0 = canonical_state_key(LINE4, empty, 0)
        shifted = [(x + 9, y - 4) for x, y in LINE4]
        key1, off1 = canonical_state_key(shifted, empty, 0)
        assert key0 == key1
        assert off1 == (off0[0] + 9, off0[1] - 4)

    def test_state_key_separates_phase(self):
        empty = {"next_id": 0, "runs": []}
        key0, _ = canonical_state_key(LINE4, empty, 0)
        key1, _ = canonical_state_key(LINE4, empty, 1)
        assert key0 != key1

    def test_round_phase_tracks_start_interval(self):
        assert round_phase(0, CFG) == 0
        assert round_phase(CFG.run_start_interval, CFG) == 0
        assert round_phase(1, CFG) == 1 % CFG.run_start_interval
        no_pipe = AlgorithmConfig(pipelining=False)
        assert round_phase(0, no_pipe) == 0
        assert round_phase(1, no_pipe) == 1
        assert round_phase(50, no_pipe) == 1


# ----------------------------------------------------------------------
# 2. exhaustive closure
# ----------------------------------------------------------------------
class TestExhaustiveClosure:
    def test_gathered_seed_is_a_single_terminal_node(self):
        dag = explore([(0, 0), (0, 1), (1, 0), (1, 1)])
        assert dag.counts() == {"total": 1, "edges": 0, "gathered": 1}
        assert dag.complete

    def test_line4_closure_counts(self):
        dag = explore(LINE4)
        counts = dag.counts()
        assert dag.complete
        assert counts["total"] == 88
        assert counts["edges"] == 176
        assert counts["gathered"] == 44
        assert counts.get("disconnected", 0) == 0

    def test_rediscovers_documented_connectivity_break(self):
        """The explorer finds the SSYNC counterexample on its own: the
        L-tetromino disconnects at depth 1 when only the corner's
        neighbor moves (the run table advances as if the plan ran)."""
        dag = explore(L_TETROMINO)
        counts = dag.counts()
        assert dag.complete
        assert counts["total"] == 396
        assert counts["disconnected"] == 88
        broken = dag.first("disconnected")
        assert broken is not None and broken.depth == 1

    def test_status_precedence_matches_engine(self):
        """A two-robot diagonal pair fits the 2x2 gathering box while
        being disconnected; the engine terminates such runs ``gathered``
        (the bounding-box test wins), so the explorer must classify the
        state identically or witnesses would not replay."""
        from repro.explore.driver import _status_of

        assert _status_of({(0, 0), (1, 1)}, 2) == "gathered"
        assert _status_of({(0, 0), (2, 2)}, 2) == "disconnected"

    def test_terminal_nodes_have_no_edges(self):
        dag = explore(L_TETROMINO)
        for node in dag.nodes.values():
            if node.status != "open":
                assert node.edges is None

    def test_exhaustive_branch_count_is_subset_lattice(self):
        """Every expanded node has exactly 2^m outgoing edges for its m
        planned movers (the full activation-subset lattice)."""
        dag = explore(LINE4)
        for node in dag.nodes.values():
            if node.edges is None:
                continue
            movers = max(len(e.choice) for e in node.edges)
            assert len(node.edges) == 1 << movers

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="empty"):
            explore([])
        with pytest.raises(ValueError, match="connected"):
            explore([(0, 0), (5, 5)])
        with pytest.raises(ValueError, match="mode"):
            explore(LINE4, mode="dfs")

    def test_max_nodes_marks_truncated(self):
        dag = explore(L_TETROMINO, max_nodes=20)
        assert dag.truncated and not dag.complete

    def test_max_depth_marks_truncated(self):
        dag = explore(LINE4, max_depth=1)
        assert dag.truncated
        assert dag.max_depth_reached == 1


# ----------------------------------------------------------------------
# 3. witnesses
# ----------------------------------------------------------------------
class TestWitnesses:
    def test_connectivity_witness_replays_bit_identically(self):
        dag = explore(L_TETROMINO)
        witness = build_witness(dag, target=dag.first("disconnected").key)
        assert witness.terminal == "connectivity_lost"
        assert witness.violation_round == 0
        assert witness.schedule == [(1,)]
        assert witness.fairness_k == 2
        assert verify_witness(witness, cfg=CFG)

    def test_witness_for_translated_seed(self):
        """Offset accounting: the same witness reconstructs from a
        shifted seed (canonical frames differ from the real one)."""
        shifted = [(x + 13, y - 7) for x, y in L_TETROMINO]
        dag = explore(shifted)
        witness = build_witness(dag, target=dag.first("disconnected").key)
        assert witness.initial == tuple(sorted(shifted))
        assert verify_witness(witness)

    def test_gathering_witness_verifies(self):
        dag = explore(LINE4)
        worst = dag.worst_case()
        witness = build_witness(dag, worst.path)
        assert witness.terminal == "gathered"
        assert witness.rounds == 2
        assert verify_witness(witness)

    def test_jsonl_round_trip(self):
        dag = explore(L_TETROMINO)
        witness = build_witness(dag, target=dag.first("disconnected").key)
        buf = io.StringIO()
        save_witness(witness, buf)
        loaded = load_witness(buf.getvalue().splitlines())
        assert loaded.initial == witness.initial
        assert loaded.schedule == witness.schedule
        assert loaded.rows == witness.rows
        assert loaded.terminal == witness.terminal
        assert loaded.fairness_k == witness.fairness_k
        assert verify_witness(loaded)

    def test_load_rejects_foreign_traces(self):
        lines = [json.dumps({"type": "header", "kind": "plain_trace"})]
        with pytest.raises(ValueError, match="ssync_witness"):
            load_witness(lines)

    def test_golden_witness_file_still_replays(self, golden_witness_path):
        """Regression: the committed witness artifact replays
        bit-identically through today's scheduler, and regenerating it
        from a fresh exploration reproduces the file byte for byte."""
        with open(golden_witness_path) as fh:
            text = fh.read()
        witness = load_witness(text.splitlines())
        assert witness.initial == tuple(sorted(L_TETROMINO))
        assert verify_witness(witness)

        dag = explore(L_TETROMINO)
        rebuilt = build_witness(dag, target=dag.first("disconnected").key)
        buf = io.StringIO()
        save_witness(rebuilt, buf)
        assert buf.getvalue() == text

    def test_tampered_witness_fails_verification(self):
        dag = explore(L_TETROMINO)
        witness = build_witness(dag, target=dag.first("disconnected").key)
        witness.rows[-1] = tuple(
            (x + 1, y) for x, y in witness.rows[-1]
        )
        assert not verify_witness(witness)

    def test_build_witness_needs_a_path(self):
        dag = explore(LINE4)
        with pytest.raises(ValueError, match="edges or a target"):
            build_witness(dag)


@pytest.fixture
def golden_witness_path():
    import os

    return os.path.join(
        os.path.dirname(__file__), "data", "ssync_witness_n4.jsonl"
    )


# ----------------------------------------------------------------------
# 4. worst-case analysis
# ----------------------------------------------------------------------
class TestWorstCase:
    def test_line4_worst_schedule_is_two_rounds(self):
        """FSYNC gathers line-4 in 1 round; the SSYNC adversary can
        stretch it to exactly 2 without stalling or disconnecting."""
        dag = explore(LINE4)
        worst = dag.worst_case()
        assert not worst.unbounded
        assert worst.complete
        assert worst.rounds == 2
        assert len(worst.path) == 2

    def test_l_tetromino_has_a_nonstall_livelock(self):
        """Without a fairness bound the adversary can cycle the
        L-tetromino forever while activating someone every round."""
        dag = explore(L_TETROMINO)
        worst = dag.worst_case()
        assert worst.unbounded
        assert worst.rounds is None
        # the cycle witness closes on itself
        assert worst.cycle[0] == worst.cycle[-1]
        assert len(worst.cycle) > 2

    def test_stall_edges_always_cycle(self):
        """With stall edges included, idling forever is a (trivial)
        cycle — the reason include_stall defaults to False here."""
        worst = explore(LINE4).worst_case(include_stall=True)
        assert worst.unbounded

    def test_truncated_dag_is_not_a_certificate(self):
        dag = explore(LINE4, max_depth=1)
        assert not dag.worst_case().complete


# ----------------------------------------------------------------------
# 5. beam mode
# ----------------------------------------------------------------------
class TestBeamMode:
    def test_beam_is_seed_deterministic(self):
        kwargs = dict(
            mode="beam", beam_width=8, branch_samples=6, seed=5
        )
        a = explore(L_TETROMINO, **kwargs)
        b = explore(L_TETROMINO, **kwargs)
        assert list(a.nodes) == list(b.nodes)
        assert a.counts() == b.counts()

    def test_beam_subsamples_the_lattice(self):
        full = explore(L_TETROMINO)
        beam = explore(
            L_TETROMINO, mode="beam", beam_width=4, branch_samples=4
        )
        assert beam.counts()["total"] < full.counts()["total"]
        assert not beam.complete

    def test_beam_still_finds_the_break(self):
        beam = explore(
            L_TETROMINO, mode="beam", beam_width=8, branch_samples=8
        )
        assert beam.first("disconnected") is not None


# ----------------------------------------------------------------------
# 6. certification
# ----------------------------------------------------------------------
class TestCertification:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.analysis.certification import run_certification

        return run_certification(max_n=4, min_n=3)

    def test_small_n_sweep_is_green(self, report):
        assert report["overall_ok"]
        assert [row["n"] for row in report["rows"]] == [3, 4]
        for row in report["rows"]:
            assert row["complete"]
            assert row["fsync_bound_ok"]
            assert row["fsync_path_consistent"]
            assert row["symmetry_consistent"]

    def test_pinned_breakability(self, report):
        by_n = {row["n"]: row for row in report["rows"]}
        assert by_n[3]["shapes"] == 6
        assert by_n[3]["breakable_shapes"] == 0
        assert by_n[4]["shapes"] == 19
        assert by_n[4]["breakable_shapes"] == 16
        assert by_n[4]["min_violation_round"] == 1
        assert by_n[4]["min_fairness_k"] == 2
        assert by_n[4]["witness_verified"] is True

    def test_headline_witness_is_replayable(self, report):
        witness = report["witness"]
        assert witness is not None
        assert witness.terminal == "connectivity_lost"
        assert verify_witness(witness)

    def test_table_rendering(self, report):
        from repro.analysis.certification import format_certification

        text = format_certification(report)
        assert "SSYNC certification sweep" in text
        assert "fsync worst" in text

    def test_fsync_budget_blowup_is_loud(self):
        from repro.analysis.certification import _fsync_rounds

        with pytest.raises(InvariantError, match="failed to gather"):
            _fsync_rounds(LINE4, CFG, budget=0)


# ----------------------------------------------------------------------
# 7. viz + CLI
# ----------------------------------------------------------------------
class TestVizAndCli:
    def test_dot_export(self):
        from repro.viz.stategraph import dag_to_dot

        dag = explore(L_TETROMINO)
        dot = dag_to_dot(dag)
        assert dot.startswith("digraph ssync_explore")
        assert dot.count("->") == dag.edge_count
        assert "#ea4335" in dot  # a disconnected node is rendered

    def test_dot_truncation_note(self):
        from repro.viz.stategraph import dag_to_dot

        dot = dag_to_dot(explore(L_TETROMINO), max_nodes=10)
        assert "more nodes" in dot

    def test_html_export_embeds_the_graph(self):
        from repro.viz.stategraph import dag_to_html

        dag = explore(LINE4)
        page = dag_to_html(dag, title="line-4")
        assert page.startswith("<!DOCTYPE html>")
        assert "<svg" in page
        start = page.index('id="dag-data">') + len('id="dag-data">')
        data = json.loads(page[start : page.index("</script>", start)])
        assert data["counts"]["total"] == 88
        assert len(data["nodes"]) == 88
        assert len(data["edges"]) == 176

    def test_cli_explore_json(self, capsys):
        from repro.cli import main

        rc = main(
            ["explore", "--family", "line", "-n", "4", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["complete"] is True
        assert payload["counts"]["total"] == 88
        assert payload["first_violation_round"] is None

    def test_cli_explore_writes_witness_and_exports(self, tmp_path, capsys):
        from repro.cli import main

        witness_path = tmp_path / "w.jsonl"
        rc = main(
            [
                "explore",
                "--family",
                "staircase",
                "-n",
                "5",
                "--witness",
                str(witness_path),
                "--dot",
                str(tmp_path / "d.dot"),
                "--html",
                str(tmp_path / "d.html"),
            ]
        )
        assert rc == 0
        assert "connectivity break" in capsys.readouterr().out
        assert (tmp_path / "d.dot").read_text().startswith("digraph")
        assert "<svg" in (tmp_path / "d.html").read_text()

        rc = main(["explore", "--replay", str(witness_path)])
        assert rc == 0
        assert "replays bit-identically" in capsys.readouterr().out

    def test_cli_replay_missing_file_fails_cleanly(self, capsys):
        from repro.cli import main

        rc = main(["explore", "--replay", "/nonexistent/w.jsonl"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_certify_json(self, capsys):
        from repro.cli import main

        rc = main(["certify", "--min-n", "3", "--max-n", "4", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["overall_ok"] is True
        assert payload["witness"]["fairness_k"] == 2
        assert len(payload["rows"]) == 2
