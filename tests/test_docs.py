"""Documentation integrity: intra-repo markdown links must resolve and
the docs landing page must cover every guide.

Runs the same checker as the CI ``docs`` job (``tools/check_docs.py``),
so a broken link fails tier-1 locally before it fails in CI.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).parent.parent
sys.path.insert(0, str(REPO / "tools"))

from check_docs import broken_links, iter_markdown  # noqa: E402


class TestDocsLinks:
    def test_all_relative_links_resolve(self):
        broken = broken_links(REPO)
        assert not broken, "broken markdown links: " + ", ".join(
            f"{md} -> {target}" for md, target in broken
        )

    def test_docs_are_scanned(self):
        names = {p.name for p in iter_markdown(REPO)}
        assert {"README.md", "api.md", "schedulers.md",
                "incremental.md"} <= names

    def test_landing_page_links_every_guide(self):
        landing = (REPO / "docs" / "README.md").read_text()
        for guide in ("api.md", "schedulers.md", "incremental.md"):
            assert f"({guide})" in landing, f"docs/README.md misses {guide}"
