"""Integration tests: the full algorithm on every workload family.

These are the repository's acceptance tests for the paper's headline:
every connected swarm gathers, connectivity holds every round (the engine
raises otherwise), and round counts respect a linear budget.
"""

import pytest

from repro.core.algorithm import gather
from repro.core.config import AlgorithmConfig
from repro.swarms.generators import (
    comb,
    diamond_ring,
    double_donut,
    h_shape,
    l_corridor,
    line,
    plus_shape,
    random_blob,
    random_tree,
    ring,
    solid_rectangle,
    spiral,
    staircase,
    staircase_corridor,
)

ALL_SHAPES = [
    ("line", line(40)),
    ("vline", line(25, vertical=True)),
    ("solid", solid_rectangle(9, 7)),
    ("ring", ring(14)),
    ("thick_ring", ring(12, thickness=2)),
    ("plus", plus_shape(10)),
    ("wide_plus", plus_shape(8, width=3)),
    ("h", h_shape(11, 7)),
    ("staircase", staircase(15)),
    ("stair_corridor", staircase_corridor(10, run=3)),
    ("diamond", diamond_ring(9)),
    ("spiral", spiral(6)),
    ("comb", comb(6, 8)),
    ("l_corridor", l_corridor(10, 2)),
    ("double_donut", double_donut(14)),
    ("blob", random_blob(250, 11)),
    ("tree", random_tree(180, 11)),
]


@pytest.mark.parametrize("name,cells", ALL_SHAPES, ids=[s[0] for s in ALL_SHAPES])
def test_every_family_gathers_with_connectivity(name, cells):
    result = gather(cells, check_connectivity=True)
    assert result.gathered, f"{name} did not gather in the linear budget"
    assert result.robots_final <= 4


@pytest.mark.parametrize(
    "name,cells,c",
    [
        ("line", line(80), 1.0),
        ("solid", solid_rectangle(10, 10), 1.0),
        ("ring", ring(22), 4.0),
        ("blob", random_blob(400, 3), 1.0),
        ("tree", random_tree(250, 3), 1.0),
        ("diamond", diamond_ring(12), 6.0),
    ],
    ids=["line", "solid", "ring", "blob", "tree", "diamond"],
)
def test_linear_round_bound(name, cells, c):
    """rounds <= c*n + 40 — much tighter than Theorem 1's 45n."""
    n = len(cells)
    result = gather(cells, max_rounds=int(c * n) + 40)
    assert result.gathered, f"{name}: stalled (>{c}n+40 rounds for n={n})"


def test_rounds_scale_linearly_on_rings():
    """Empirical Theorem 1 on the reshapement-bound family: the growth
    exponent of rounds vs n stays near 1 (and the per-n ratio is bounded)."""
    from repro.analysis.fitting import scaling_exponent

    ns, rounds = [], []
    # start at side 24: smaller rings ride the bump-merge shortcut, whose
    # decay would masquerade as super-linear growth in the fit
    for side in (24, 32, 48, 64):
        cells = ring(side)
        r = gather(cells)
        assert r.gathered
        ns.append(len(cells))
        rounds.append(r.rounds)
    exponent = scaling_exponent(ns, rounds)
    assert exponent < 1.3, f"super-linear growth: exponent {exponent:.2f}"
    assert max(rounds[i] / ns[i] for i in range(len(ns))) < 6.0


def test_diameter_lower_bound_respected():
    """No algorithm beats Omega(diameter); sanity-check the accounting."""
    cells = line(60)
    r = gather(cells)
    # 8-neighbor moves shrink the Chebyshev diameter by at most 2 per round
    assert r.rounds >= (60 - 2) / 2 - 1


def test_gathering_is_idempotent():
    cells = [(0, 0), (1, 0), (0, 1)]
    r = gather(cells)
    assert r.gathered and r.rounds == 0


def test_huge_blob_smoke():
    r = gather(random_blob(1200, 17), check_connectivity=False)
    assert r.gathered
