"""Unit tests for repro.grid.envelope (Lemma 1 proof machinery)."""

import pytest

from repro.grid.boundary import outer_boundary
from repro.grid.envelope import (
    boundary_perimeter,
    enclosed_area,
    envelope_extremes,
    monotone_subchains,
    smallest_enclosing_rectangle,
    upper_envelope,
    vector_chain,
)
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import ring, solid_rectangle


class TestRectangleAndEnvelope:
    def test_ser(self):
        s = SwarmState([(0, 0), (3, 5), (-1, 2)])
        assert smallest_enclosing_rectangle(s) == (-1, 0, 3, 5)

    def test_upper_envelope(self):
        s = SwarmState([(0, 0), (0, 3), (1, 1)])
        assert upper_envelope(s) == {0: 3, 1: 1}

    def test_extremes(self):
        s = SwarmState(solid_rectangle(4, 2))
        left, right = envelope_extremes(s)
        assert left == (0, 1)
        assert right == (3, 1)

    def test_extremes_empty_raises(self):
        with pytest.raises(ValueError):
            envelope_extremes(SwarmState([]))


class TestVectorChain:
    def test_closed_chain_sums_to_zero(self):
        for cells in (solid_rectangle(4, 3), ring(6)):
            b = outer_boundary(SwarmState(cells))
            vc = vector_chain(b)
            assert sum(v[0] for v in vc) == 0
            assert sum(v[1] for v in vc) == 0

    def test_single_robot_empty_chain(self):
        b = outer_boundary(SwarmState([(0, 0)]))
        assert vector_chain(b) == []

    def test_unit_steps(self):
        b = outer_boundary(SwarmState(ring(5)))
        for v in vector_chain(b):
            assert max(abs(v[0]), abs(v[1])) == 1


class TestMonotoneSubchains:
    def test_empty(self):
        assert monotone_subchains([]) == []

    def test_pure_east(self):
        assert monotone_subchains([(1, 0)] * 4) == [(0, 4)]

    def test_split_on_reversal(self):
        vecs = [(1, 0), (1, 0), (-1, 0), (-1, 0), (1, 0)]
        assert monotone_subchains(vecs) == [(0, 2), (2, 4), (4, 5)]

    def test_vertical_vectors_do_not_split(self):
        vecs = [(1, 0), (0, 1), (0, -1), (1, 0)]
        assert monotone_subchains(vecs) == [(0, 4)]

    def test_covers_all_indices(self):
        b = outer_boundary(SwarmState(ring(8)))
        vecs = vector_chain(b)
        ranges = monotone_subchains(vecs)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == len(vecs)
        for (_a, b1), (c, _) in zip(ranges, ranges[1:]):
            assert b1 == c


class TestAreaAndPerimeter:
    def test_square_area(self):
        b = outer_boundary(SwarmState(solid_rectangle(3, 3)))
        assert enclosed_area(b) == pytest.approx(9.0)

    def test_hole_area_negative(self):
        bs = __import__(
            "repro.grid.boundary", fromlist=["extract_boundaries"]
        ).extract_boundaries(SwarmState(ring(5)))
        inner = [b for b in bs if not b.is_outer][0]
        # 3x3 hole traced clockwise -> negative signed area
        assert enclosed_area(inner) == pytest.approx(-9.0)

    def test_outer_area_counts_holes_as_inside(self):
        b = outer_boundary(SwarmState(ring(5)))
        assert enclosed_area(b) == pytest.approx(25.0)

    def test_perimeter(self):
        assert boundary_perimeter(SwarmState(solid_rectangle(3, 3))) == 12
        assert boundary_perimeter(SwarmState([(0, 0)])) == 4
