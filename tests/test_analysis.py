"""Unit tests for the analysis layer: fits, sweeps, tables, progress."""

import numpy as np
import pytest

from repro.analysis.experiments import run_scaling, sweep
from repro.analysis.fitting import (
    fit_linear,
    fit_power,
    fit_quadratic,
    scaling_exponent,
)
from repro.analysis.progress import (
    find_progress_sites,
    is_mergeless,
    mergeless_structure,
)
from repro.analysis.tables import format_table
from repro.core.config import AlgorithmConfig
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import ring, solid_rectangle


class TestFits:
    def test_linear_exact(self):
        f = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
        assert f.coefficients[0] == pytest.approx(2.0)
        assert f.coefficients[1] == pytest.approx(1.0)
        assert f.r_squared == pytest.approx(1.0)

    def test_linear_predict(self):
        f = fit_linear([0, 1], [1, 3])
        assert f.predict(10) == pytest.approx(21.0)

    def test_quadratic_exact(self):
        xs = [1, 2, 3, 4, 5]
        f = fit_quadratic(xs, [x * x for x in xs])
        assert f.coefficients[0] == pytest.approx(1.0, abs=1e-9)
        assert f.r_squared == pytest.approx(1.0)

    def test_power_recovers_exponent(self):
        xs = [4, 8, 16, 32, 64]
        f = fit_power(xs, [3 * x**1.5 for x in xs])
        assert f.coefficients[1] == pytest.approx(1.5, abs=1e-9)

    def test_scaling_exponent(self):
        xs = [10, 20, 40, 80]
        assert scaling_exponent(xs, [x * 2 for x in xs]) == pytest.approx(1.0)
        assert scaling_exponent(xs, [x * x for x in xs]) == pytest.approx(2.0)

    def test_power_requires_positive(self):
        with pytest.raises(ValueError):
            fit_power([1, 2], [0, 1])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_linear([1], [1])
        with pytest.raises(ValueError):
            fit_quadratic([1, 2], [1, 2])


class TestExperimentHelpers:
    def test_run_scaling_collects_points(self):
        pts = run_scaling("line", [20, 40])
        assert len(pts) == 2
        assert all(p.gathered for p in pts)
        assert pts[0].n == 20 and pts[1].n == 40
        assert pts[1].rounds >= pts[0].rounds

    def test_sweep_reports_stall(self):
        out = sweep(
            [True, False],
            lambda v: AlgorithmConfig(enable_runs=v),
            lambda: ring(14),
            max_rounds=400,
        )
        assert out[True] > 0
        assert out[False] == -1  # runs disabled: mergeless ring stalls


class TestParallelSweeps:
    """The ProcessPoolExecutor sweep runner: deterministic ordering and
    bit-identical results to the serial path."""

    def test_parallel_matches_serial(self):
        serial = run_scaling("line", [16, 24, 32], check_connectivity=False)
        parallel = run_scaling(
            "line", [16, 24, 32], check_connectivity=False, workers=2
        )
        assert parallel == serial  # order and values

    def test_workers_zero_uses_cpu_count(self):
        pts = run_scaling(
            "solid", [16, 25], check_connectivity=False, workers=0
        )
        assert [p.gathered for p in pts] == [True, True]

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            run_scaling("line", [8], workers=-1)

    def test_per_task_seeds_vary_stochastic_families(self):
        a = run_scaling("blob", [40], seeds=[1], check_connectivity=False)
        b = run_scaling("blob", [40], seeds=[2], check_connectivity=False)
        c = run_scaling("blob", [40], seeds=[1], check_connectivity=False)
        assert a == c  # same seed -> same instance -> same result
        assert (a[0].rounds, a[0].diameter) != (b[0].rounds, b[0].diameter) \
            or a[0].merges != b[0].merges

    def test_run_ablation_parallel_matches_serial(self):
        from repro.analysis.experiments import run_ablation

        serial = run_ablation(
            "enable_runs", [True, False], "ring", 40, max_rounds=400
        )
        parallel = run_ablation(
            "enable_runs",
            [True, False],
            "ring",
            40,
            max_rounds=400,
            workers=2,
        )
        assert serial == parallel
        assert serial[True] > 0 and serial[False] == -1


class TestTables:
    def test_alignment(self):
        txt = format_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = txt.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1

    def test_title(self):
        txt = format_table(["x"], [[1]], title="T")
        assert txt.splitlines()[0] == "T"

    def test_bad_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestProgress:
    def test_ring_is_mergeless(self):
        assert is_mergeless(SwarmState(ring(12)))

    def test_solid_is_not_mergeless(self):
        assert not is_mergeless(SwarmState(solid_rectangle(5, 5)))

    def test_mergeless_has_progress_sites(self):
        # Lemma 1: mergeless + not gathered -> run starts exist
        sites = find_progress_sites(SwarmState(ring(12)))
        assert sites

    def test_structure_report(self):
        rep = mergeless_structure(SwarmState(ring(12)))
        assert rep.aligned_segments >= 4
        assert rep.long_segments >= 4
        assert rep.max_perpendicular_run >= 3
