"""Empirical checks of the paper's Lemma 3 run invariants.

Lemma 3 guarantees, for every run until it terminates:

1. every round it moves one robot further in moving direction;
4. it cannot see other sequent runs in front of it;
6. good pairs stay good pairs (their folds keep enabling the merge).

We track live runs across a long simulation and assert the observable
counterparts of these invariants on the real event/position stream.
"""

import pytest

from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.engine.scheduler import FsyncEngine
from repro.grid.geometry import chebyshev
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import double_donut, ring, spiral

CFG = AlgorithmConfig()


def _simulate(cells, rounds):
    """Per-round snapshots of run positions: {run_id: [(round, robot)]}."""
    ctrl = GatherOnGrid(CFG)
    engine = FsyncEngine(SwarmState(cells), ctrl)
    tracks = {}
    for i in range(rounds):
        if engine.state.is_gathered():
            break
        engine.step()
        for r in ctrl.run_manager.runs.values():
            tracks.setdefault(r.run_id, []).append((i, r.robot))
    return ctrl, tracks


@pytest.mark.parametrize(
    "cells,runs_expected",
    [
        (ring(20), True),
        (ring(32), True),
        (spiral(6), True),
        # the donut is merge-rich: it may gather on merges alone before any
        # run gets started, in which case there is nothing to track
        (double_donut(14), False),
    ],
    ids=["ring20", "ring32", "spiral", "donut"],
)
def test_invariant1_unit_speed(cells, runs_expected):
    """Lemma 3.1: a run's holder changes every round, and consecutive
    holders stay spatially close (one boundary robot per round means
    Chebyshev distance at most 2 after the holder's own fold)."""
    _, tracks = _simulate(cells, 60)
    if runs_expected:
        assert tracks, "no runs observed"
    for run_id, track in tracks.items():
        for (r0, c0), (r1, c1) in zip(track, track[1:]):
            if r1 == r0 + 1:  # consecutive observations
                assert c1 != c0, f"run {run_id} stood still in round {r1}"
                assert chebyshev(c0, c1) <= 2, (
                    f"run {run_id} teleported {c0} -> {c1}"
                )


@pytest.mark.parametrize(
    "cells", [ring(24), double_donut(14)], ids=["ring", "donut"]
)
def test_invariant4_sequent_spacing(cells):
    """Lemma 3.4: same-direction runs on one contour never crowd below the
    viewing distance for long (the follower stops within one round)."""
    ctrl = GatherOnGrid(CFG)
    engine = FsyncEngine(SwarmState(cells), ctrl)
    from repro.grid.ring import RingSet

    violations = 0
    for _ in range(60):
        if engine.state.is_gathered():
            break
        engine.step()
        contours = RingSet.from_cells(engine.state)
        located, _ = ctrl.run_manager.locate(contours)
        runs = ctrl.run_manager.runs
        by_boundary = {}
        for rid, loc in located.items():
            pos = loc.ring.positions_map()[loc.node]
            by_boundary.setdefault(loc.b_idx, []).append((pos, rid))
        for b, entries in by_boundary.items():
            n = len(contours.rings[b])
            for p1, r1 in entries:
                for p2, r2 in entries:
                    if r1 >= r2:
                        continue
                    if runs[r1].direction != runs[r2].direction:
                        continue
                    d = min((p2 - p1) % n, (p1 - p2) % n)
                    # strictly-follower pairs closer than half the cycle
                    # and within view may persist at most transiently
                    if d < 3 and 2 * d < n:
                        violations += 1
    assert violations <= 2, f"{violations} crowding violations"


def test_invariant6_good_pairs_enable_merges():
    """Lemma 3.6 + Lemma 2a: every simulation phase that starts runs on a
    mergeless ring ends in a merge (good pairs deliver)."""
    ctrl = GatherOnGrid(CFG)
    engine = FsyncEngine(SwarmState(ring(24)), ctrl)
    while not engine.state.is_gathered() and engine.round_index < 2000:
        engine.step()
    assert engine.state.is_gathered()
    starts = ctrl.events.rounds_with("run_start")
    merges = ctrl.events.rounds_with("merge")
    assert starts and merges
    # after the first run start, a merge follows within ~n rounds
    n = 92
    first_start = starts[0]
    assert any(
        first_start < m <= first_start + n + CFG.run_start_interval
        for m in merges
    )
