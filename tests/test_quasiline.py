"""Unit tests for quasi lines, stairways, and run start sites (Def. 1)."""

import pytest

from repro.core.quasiline import (
    _chain_segments,
    boundary_segments,
    is_quasi_line,
    is_stairway,
    run_start_sites,
)
from repro.grid.boundary import extract_boundaries
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import ring, solid_rectangle, staircase


class TestChainSegments:
    def test_straight_line(self):
        chain = [(x, 0) for x in range(4)]
        assert _chain_segments(chain) == [("h", 4)]

    def test_l_turn(self):
        chain = [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]
        assert _chain_segments(chain) == [("h", 3), ("v", 3)]

    def test_diagonal_breaks_segment(self):
        chain = [(0, 0), (1, 0), (2, 1), (3, 1)]
        segs = _chain_segments(chain)
        assert ("h", 2) in segs

    def test_empty(self):
        assert _chain_segments([]) == []


class TestQuasiLineDef:
    def test_straight_horizontal(self):
        chain = [(x, 0) for x in range(6)]
        assert is_quasi_line(chain, "h")
        assert not is_quasi_line(chain, "v")

    def test_with_short_jog(self):
        chain = (
            [(x, 0) for x in range(3)]
            + [(2, 1)]
            + [(x, 1) for x in range(3, 6)]
        )
        # h-runs: 3 then (2,1),(3,1),(4,1),(5,1) = 4; v-run: 2  -> quasi line
        assert is_quasi_line(chain, "h")

    def test_long_vertical_violates(self):
        chain = (
            [(x, 0) for x in range(3)]
            + [(2, 1), (2, 2)]
            + [(x, 2) for x in range(3, 6)]
        )
        # vertical subchain (2,0),(2,1),(2,2) has 3 robots -> not quasi line
        assert not is_quasi_line(chain, "h")

    def test_short_horizontal_run_violates(self):
        chain = [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2), (3, 3), (4, 3), (4, 4), (5, 4)]
        assert not is_quasi_line(chain, "h")

    def test_too_short(self):
        assert not is_quasi_line([(0, 0), (1, 0)], "h")

    def test_bad_axis(self):
        with pytest.raises(ValueError):
            is_quasi_line([(0, 0)], "x")


class TestStairway:
    def test_staircase_chain(self):
        chain = [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2)]
        assert is_stairway(chain)

    def test_line_is_not_stairway(self):
        assert not is_stairway([(x, 0) for x in range(5)])

    def test_long_run_not_stairway(self):
        chain = [(0, 0), (1, 0), (2, 0), (2, 1), (3, 1)]
        assert not is_stairway(chain)

    def test_too_short(self):
        assert not is_stairway([(0, 0), (1, 0)])


class TestBoundarySegments:
    def test_square_sides(self):
        b = extract_boundaries(SwarmState(solid_rectangle(4, 4)))[0]
        segs = boundary_segments(b)
        lens = sorted(ln for _, _, ln in segs)
        # four sides of 4 robots (the linear scan splits the wrapped one)
        assert max(lens) == 4
        assert len(segs) >= 4


class TestStartSites:
    def test_ring_corners_are_sites(self):
        state = SwarmState(ring(8))
        sites = run_start_sites(extract_boundaries(state))
        robots = {s.robot for s in sites}
        top = 7
        assert (0, 0) in robots
        assert (top, top) in robots

    def test_start_b_yields_two_directions(self):
        state = SwarmState(ring(8))
        sites = run_start_sites(extract_boundaries(state))
        at_corner = [s for s in sites if s.robot == (0, 0)]
        dirs = {s.direction for s in at_corner}
        assert dirs == {1, -1}

    def test_line_has_no_sites(self):
        # 1-thick line endpoints reverse the contour; leaf merges own them
        state = SwarmState([(x, 0) for x in range(10)])
        sites = run_start_sites(extract_boundaries(state))
        assert sites == []

    def test_mid_stretch_not_a_site(self):
        state = SwarmState(ring(10))
        sites = run_start_sites(extract_boundaries(state))
        assert all(s.robot != (4, 0) for s in sites)

    def test_stretch_direction_reported(self):
        state = SwarmState(ring(8))
        sites = run_start_sites(extract_boundaries(state))
        for s in sites:
            assert abs(s.stretch_dir[0]) + abs(s.stretch_dir[1]) == 1

    def test_chamfered_corner_is_site(self):
        # quasi line ending in a stairway (diagonal contour step behind)
        cells = sorted(
            set(ring(8)) - {(0, 0), (7, 0), (0, 7), (7, 7)}
            | {(1, 1), (6, 1), (1, 6), (6, 6)}
        )
        state = SwarmState(cells)
        sites = run_start_sites(extract_boundaries(state))
        assert sites, "chamfered ring must still offer start sites"
