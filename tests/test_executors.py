"""Persistent worker pool, snapshot codec, and planning executors.

The recovery tests SIGKILL real worker processes — the pool must
detect the death, respawn, requeue, emit lifecycle events, and keep
every result bit-identical to an undisturbed run.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.engine.executors import (
    PLAN_BACKENDS,
    ExecutorUnavailable,
    PersistentWorkerPool,
    ProcessPlanExecutor,
    ThreadPlanExecutor,
    WorkerCrashLoop,
    WorkerTaskError,
    default_plan_workers,
    make_plan_executor,
)
from repro.engine.scheduler import FsyncEngine
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import ring


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


def _suicide(x):
    os.kill(os.getpid(), signal.SIGKILL)


def _sleep_forever(x):
    time.sleep(3600)


class TestPersistentWorkerPool:
    def test_run_all_preserves_submission_order(self):
        with PersistentWorkerPool(3) as pool:
            out = pool.run_all([(_square, (i,)) for i in range(20)])
        assert out == [i * i for i in range(20)]

    def test_task_exception_carries_remote_traceback(self):
        with PersistentWorkerPool(2) as pool:
            with pytest.raises(WorkerTaskError, match="boom 7"):
                pool.run_all([(_boom, (7,))])
            # the worker survives a poison task and keeps serving
            assert pool.run_all([(_square, (3,))]) == [9]

    def test_sigkilled_worker_respawns_and_requeues(self):
        events = []

        def on_event(kind, **data):
            events.append(kind)

        with PersistentWorkerPool(2, on_event=on_event) as pool:
            pids = pool.worker_pids()
            ids = [pool.submit(_square, (i,)) for i in range(8)]
            os.kill(pids[0], signal.SIGKILL)
            got = {}
            while len(got) < len(ids):
                task_id, ok, value = pool.next_completed()
                assert ok
                got[task_id] = value
            assert [got[i] for i in ids] == [i * i for i in range(8)]
            assert "worker_failed" in events
            assert "worker_respawned" in events
            assert pool.worker_count == 2
            assert pool.worker_pids() != pids

    def test_zero_timeout_poll_drains_the_queue(self):
        # A pure-polling consumer (the service's completion poller)
        # calls next_completed(timeout=0) in a loop.  That poll must
        # still service the pool: collect finished results AND hand
        # queued tasks to freed workers — with 1 worker and 3 tasks,
        # tasks 2 and 3 only ever run via this path.
        with PersistentWorkerPool(1) as pool:
            ids = [pool.submit(_square, (i,)) for i in range(3)]
            got = {}
            deadline = time.monotonic() + 30
            while len(got) < len(ids):
                assert time.monotonic() < deadline, "queue stalled"
                item = pool.next_completed(timeout=0)
                if item is None:
                    time.sleep(0.01)
                    continue
                task_id, ok, value = item
                assert ok
                got[task_id] = value
        assert [got[i] for i in ids] == [0, 1, 4]

    def test_poison_task_gives_up_after_max_retries(self):
        with PersistentWorkerPool(1, max_retries=2) as pool:
            with pytest.raises(WorkerCrashLoop, match="killed 3"):
                pool.run_all([(_suicide, (0,))])
            # pool still healthy afterwards
            assert pool.run_all([(_square, (5,))]) == [25]

    def test_task_timeout_kills_stuck_worker(self):
        events = []

        def on_event(kind, **data):
            events.append((kind, data.get("reason")))

        with PersistentWorkerPool(
            1, on_event=on_event, task_timeout=0.3, max_retries=0
        ) as pool:
            with pytest.raises(WorkerCrashLoop):
                pool.run_all([(_sleep_forever, (0,))])
        assert ("worker_failed", "timeout") in events

    def test_ensure_workers_grows_only(self):
        with PersistentWorkerPool(1) as pool:
            pool.ensure_workers(3)
            assert pool.worker_count == 3
            pool.ensure_workers(2)
            assert pool.worker_count == 3

    def test_close_is_idempotent_and_rejects_submits(self):
        pool = PersistentWorkerPool(1)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(_square, (1,))

    def test_bad_worker_count(self):
        with pytest.raises(ValueError, match=">= 1"):
            PersistentWorkerPool(0)


class TestSnapshotCodec:
    def test_round_trip_rebuilds_planning_context(self):
        from repro.core.runs import RunManager
        from repro.engine.snapshot import (
            decode_round_context,
            encode_round_context,
        )
        from repro.grid.ring import RingSet

        cfg = AlgorithmConfig()
        ctrl = GatherOnGrid(cfg)
        eng = FsyncEngine(SwarmState(ring(16)), ctrl)
        # advance until runs exist so the codec has rings to encode
        while not ctrl.run_manager.runs and eng.round_index < 50:
            eng.step()
        assert ctrl.run_manager.runs
        state = eng.state
        contours = RingSet.from_cells(state.cells)
        located, lost = ctrl.run_manager.locate(contours)
        payload = encode_round_context(
            cfg,
            ctrl.run_manager.runs,
            state.cells,
            {},
            located,
            lost,
            eng.round_index,
        )
        decoded = decode_round_context(payload)
        manager, ctx = decoded.manager, decoded.ctx
        assert isinstance(manager, RunManager)
        assert manager.runs == ctrl.run_manager.runs
        occupied, merge_moves, dec_located, dec_lost, rnd = ctx[:5]
        assert occupied == state.cells
        assert merge_moves == {}
        assert rnd == eng.round_index
        assert dec_lost == set(lost)
        # located: same run ids, same insertion order, same cells, and
        # the rebuilt rings agree on effective length
        assert list(dec_located) == list(located)
        for rid, loc in located.items():
            dec = dec_located[rid]
            assert dec.node.cell == loc.node.cell
            assert dec.b_idx == loc.b_idx
            assert len(dec.ring) == len(loc.ring)
        eng.close()

    def test_bad_magic_fails_loudly(self):
        from repro.engine.snapshot import decode_round_context

        with pytest.raises(ValueError, match="magic"):
            decode_round_context(b"XXXX" + b"\x00" * 16)


class TestPlanExecutors:
    def test_factory_backends(self):
        thread = make_plan_executor("thread", 2)
        assert isinstance(thread, ThreadPlanExecutor)
        thread.close()
        proc = make_plan_executor("process", 2)
        assert isinstance(proc, ProcessPlanExecutor)
        proc.close()

    def test_factory_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="thread, process, subinterp"):
            make_plan_executor("gpu", 2)

    def test_config_validates_backend(self):
        with pytest.raises(ValueError, match="shard_backend"):
            AlgorithmConfig(shard_backend="gpu")
        for backend in PLAN_BACKENDS:
            AlgorithmConfig(shard_backend=backend)

    def test_default_plan_workers(self):
        assert default_plan_workers(3) == 3
        auto = default_plan_workers(0)
        assert 1 <= auto <= 4

    def test_subinterp_unavailable_raises_cleanly(self):
        from repro.engine.executors import subinterp_available

        if subinterp_available():
            pytest.skip("interpreter has subinterpreter executors")
        with pytest.raises(ExecutorUnavailable, match="thread"):
            make_plan_executor("subinterp", 2)

    def test_worker_killed_mid_run_trajectory_identical(self):
        """SIGKILL a planning worker between rounds: the next dispatch
        hits the dead pipe (or its sentinel), the pool respawns and
        requeues, and the full trajectory stays bit-identical to an
        undisturbed run."""

        def run(kill=False):
            cfg = AlgorithmConfig(
                shard_planning=True,
                shard_backend="process",
                shard_workers=2,
            )
            states = []
            ctrl = GatherOnGrid(cfg)
            killed = False
            with FsyncEngine(
                SwarmState(ring(24)),
                ctrl,
                check_connectivity=False,
            ) as eng:
                while (
                    not eng.state.is_gathered()
                    and eng.round_index < 600
                ):
                    eng.step()
                    states.append(eng.state.frozen())
                    # Kill as soon as the planning pool exists, i.e.
                    # right after its first real dispatch round.
                    if kill and not killed and ctrl._shard_pool:
                        pool = ctrl._shard_executor().pool
                        os.kill(pool.worker_pids()[0], signal.SIGKILL)
                        killed = True
                kinds = [e.kind for e in ctrl.events]
            assert not kill or killed, "pool never materialized"
            return states, kinds

        clean, _ = run()
        disturbed, kinds = run(kill=True)
        assert disturbed == clean
        assert "worker_failed" in kinds
        assert "worker_respawned" in kinds


class TestLifecycle:
    """Satellite regression: a failing round must not leak the planning
    pool (worker processes) on any exit path."""

    def _exploding_controller(self):
        cfg = AlgorithmConfig(
            shard_planning=True, shard_backend="process", shard_workers=2
        )
        ctrl = GatherOnGrid(cfg)
        original = ctrl.plan_round

        def plan_round(state, round_index):
            if round_index >= 2:
                raise RuntimeError("injected mid-run failure")
            return original(state, round_index)

        ctrl.plan_round = plan_round
        return ctrl

    def test_engine_run_closes_pool_on_failing_round(self):
        ctrl = self._exploding_controller()
        eng = FsyncEngine(
            SwarmState(ring(16)), ctrl, check_connectivity=False
        )
        with pytest.raises(RuntimeError, match="injected"):
            eng.run()
        assert ctrl._shard_pool is None  # released, not leaked

    def test_engine_context_manager_closes_pool(self):
        ctrl = self._exploding_controller()
        with pytest.raises(RuntimeError, match="injected"):
            with FsyncEngine(
                SwarmState(ring(16)), ctrl, check_connectivity=False
            ) as eng:
                while True:
                    eng.step()
        assert ctrl._shard_pool is None

    def test_controller_context_manager(self):
        cfg = AlgorithmConfig(shard_planning=True, shard_workers=2)
        with GatherOnGrid(cfg) as ctrl:
            eng = FsyncEngine(
                SwarmState(ring(12)), ctrl, check_connectivity=False
            )
            eng.step()
            assert ctrl._shard_pool is not None
        assert ctrl._shard_pool is None

    def test_closed_controller_plans_again(self):
        cfg = AlgorithmConfig(shard_planning=True, shard_workers=2)
        ctrl = GatherOnGrid(cfg)
        eng = FsyncEngine(
            SwarmState(ring(12)), ctrl, check_connectivity=False
        )
        eng.step()
        ctrl.close()
        eng.step()  # executor recreated on demand
        assert ctrl._shard_pool is not None
        ctrl.close()
