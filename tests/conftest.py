"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import AlgorithmConfig
from repro.grid.occupancy import SwarmState


@pytest.fixture
def cfg() -> AlgorithmConfig:
    """The paper's default configuration."""
    return AlgorithmConfig()


@pytest.fixture
def small_cfg() -> AlgorithmConfig:
    """A small-radius configuration for tests that exercise locality limits."""
    return AlgorithmConfig(viewing_radius=8, max_bump_length=3)


def ring_cells(side: int, thickness: int = 1):
    from repro.swarms.generators import ring

    return ring(side, thickness)


@pytest.fixture
def ring12():
    return ring_cells(12)


@pytest.fixture
def solid5() -> SwarmState:
    return SwarmState([(x, y) for x in range(5) for y in range(5)])
