"""Exhaustive verification on every connected swarm up to size 7.

Model checking for the gathering algorithm: there are 1+2+6+19+63+216+760
= 1067 fixed polyominoes with at most 7 cells; every one must gather with
connectivity intact every round.  Any symmetric FSYNC corner case (the
paper's Figure 5 hazards, swap livelocks, ...) at small scale would be
caught here outright.
"""

import pytest

from repro.core.algorithm import gather
from repro.core.config import AlgorithmConfig
from repro.swarms.enumerate import all_polyominoes, polyomino_count

CFG = AlgorithmConfig()


class TestEnumeration:
    @pytest.mark.parametrize(
        "n,count", [(1, 1), (2, 2), (3, 6), (4, 19), (5, 63), (6, 216)]
    )
    def test_counts_match_oeis(self, n, count):
        assert polyomino_count(n) == count

    def test_shapes_are_connected(self):
        from repro.grid.connectivity import is_connected

        for shape in all_polyominoes(5):
            assert is_connected(shape)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(all_polyominoes(0))


@pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
def test_every_polyomino_gathers(n):
    budget = 40 * n + 40
    failures = []
    for shape in all_polyominoes(n):
        result = gather(
            sorted(shape), CFG, max_rounds=budget, check_connectivity=True
        )
        if not result.gathered:
            failures.append(sorted(shape))
            if len(failures) >= 3:
                break
    assert not failures, f"stalled or broke on {len(failures)}+: {failures}"


#: Exact worst-case FSYNC gathering rounds over every fixed polyomino of
#: each size — golden bounds, far below the certified linear budget.
#: The maximum is always attained by the straight line.
GOLDEN_WORST_ROUNDS = {3: 1, 4: 1, 5: 2, 6: 2, 7: 3, 8: 3}


@pytest.mark.parametrize("n", sorted(GOLDEN_WORST_ROUNDS))
def test_golden_worst_case_rounds(n):
    worst = 0
    for shape in all_polyominoes(n):
        result = gather(sorted(shape), CFG, max_rounds=40 * n + 40)
        assert result.gathered
        worst = max(worst, result.rounds)
    assert worst == GOLDEN_WORST_ROUNDS[n], (
        f"worst-case FSYNC rounds drifted at n={n}: {worst} != "
        f"{GOLDEN_WORST_ROUNDS[n]} (an algorithm change moved the "
        f"golden bound — recompute deliberately if intended)"
    )


#: How many fixed polyominoes of each size an unrestricted SSYNC
#: adversary can disconnect, certified by the exhaustive explorer
#: (sizes above 4 are covered by the CI certification sweep).
GOLDEN_BREAKABLE_SHAPES = {3: 0, 4: 16}


@pytest.mark.parametrize("n", sorted(GOLDEN_BREAKABLE_SHAPES))
def test_golden_ssync_breakability(n):
    from repro.explore import explore

    breakable = sum(
        1
        for shape in all_polyominoes(n)
        if explore(sorted(shape), cfg=CFG).first("disconnected")
        is not None
    )
    assert breakable == GOLDEN_BREAKABLE_SHAPES[n]
