"""Exhaustive verification on every connected swarm up to size 7.

Model checking for the gathering algorithm: there are 1+2+6+19+63+216+760
= 1067 fixed polyominoes with at most 7 cells; every one must gather with
connectivity intact every round.  Any symmetric FSYNC corner case (the
paper's Figure 5 hazards, swap livelocks, ...) at small scale would be
caught here outright.
"""

import pytest

from repro.core.algorithm import gather
from repro.core.config import AlgorithmConfig
from repro.swarms.enumerate import all_polyominoes, polyomino_count

CFG = AlgorithmConfig()


class TestEnumeration:
    @pytest.mark.parametrize(
        "n,count", [(1, 1), (2, 2), (3, 6), (4, 19), (5, 63), (6, 216)]
    )
    def test_counts_match_oeis(self, n, count):
        assert polyomino_count(n) == count

    def test_shapes_are_connected(self):
        from repro.grid.connectivity import is_connected

        for shape in all_polyominoes(5):
            assert is_connected(shape)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(all_polyominoes(0))


@pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
def test_every_polyomino_gathers(n):
    budget = 40 * n + 40
    failures = []
    for shape in all_polyominoes(n):
        result = gather(
            sorted(shape), CFG, max_rounds=budget, check_connectivity=True
        )
        if not result.gathered:
            failures.append(sorted(shape))
            if len(failures) >= 3:
                break
    assert not failures, f"stalled or broke on {len(failures)}+: {failures}"
