"""Empirical validation of the paper's proof accounting (Lemmas 1-2,
Theorem 1) on real simulation event streams."""

import pytest

from repro.analysis.progress import ProgressAudit, audit_result
from repro.core.algorithm import gather
from repro.core.config import AlgorithmConfig
from repro.swarms.generators import (
    diamond_ring,
    double_donut,
    random_blob,
    ring,
    spiral,
)

CFG = AlgorithmConfig()


@pytest.mark.parametrize(
    "name,cells",
    [
        ("ring20", ring(20)),
        ("ring32", ring(32)),
        ("diamond10", diamond_ring(10)),
        ("spiral6", spiral(6)),
        ("donut", double_donut(14)),
        ("blob", random_blob(300, 13)),
    ],
    ids=["ring20", "ring32", "diamond10", "spiral6", "donut", "blob"],
)
def test_lemma1_no_idle_windows(name, cells):
    """Lemma 1: every full L-window contains a merge or a new run start."""
    result = gather(cells, CFG)
    assert result.gathered
    audit = audit_result(result, CFG)
    assert audit.lemma1_holds, (
        f"{name}: {audit.idle_windows} idle windows of L="
        f"{CFG.run_start_interval} rounds"
    )


@pytest.mark.parametrize(
    "cells", [ring(24), random_blob(200, 5)], ids=["ring", "blob"]
)
def test_theorem1_window_bound(cells):
    """Theorem 1: the number of L-windows is bounded by ~2n."""
    result = gather(cells, CFG)
    audit = audit_result(result, CFG)
    assert audit.theorem1_window_bound(result.robots_initial)


def test_run_lifetimes_bounded_by_n(ring12):
    """Lemma 2a: a run leads to its merge within at most ~n rounds."""
    result = gather(ring12, CFG)
    audit = audit_result(result, CFG)
    assert audit.max_run_lifetime <= result.robots_initial + CFG.run_start_interval


def test_all_started_runs_eventually_stop():
    result = gather(ring(28), CFG)
    audit = audit_result(result, CFG)
    # every run stops (merged/lost/terminated) or survives to the end;
    # survivors are bounded by the last window's starts
    assert audit.runs_stopped <= audit.runs_started
    assert audit.runs_started - audit.runs_stopped <= 10


def test_audit_counts_consistent():
    result = gather(ring(20), CFG)
    audit = audit_result(result, CFG)
    assert audit.windows >= 1
    assert audit.windows_with_merge <= audit.windows
    assert audit.windows_with_start <= audit.windows
    assert isinstance(audit, ProgressAudit)
