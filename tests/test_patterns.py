"""Unit tests for the merge patterns (paper Section 3.1, Figs. 2-3)."""

import pytest

from repro.core.config import AlgorithmConfig
from repro.core.patterns import (
    MergePattern,
    compose_moves,
    merge_move_for,
    plan_merges,
)
from repro.core.view import LocalView
from repro.grid.connectivity import is_connected
from repro.grid.occupancy import SwarmState


CFG = AlgorithmConfig()


def apply(cells, cfg=CFG):
    state = SwarmState(cells)
    moves, pats = plan_merges(state, cfg)
    merged = state.apply_moves(moves)
    return state, moves, pats, merged


class TestLeafMerge:
    def test_t_shape_merges_down(self):
        # T-shape: the stem and row merge toward each other (several
        # patterns compose); robots are anonymous so we assert counts
        state, moves, pats, merged = apply([(0, 0), (1, 0), (2, 0), (1, 1)])
        assert merged >= 1
        assert is_connected(state.cells)

    def test_isolated_leaf_merges(self):
        # long line with a single prong: the prong is a leaf (its column
        # and row runs are blocked) and hops onto its anchor
        line = [(x, 0) for x in range(10)]
        state, moves, pats, merged = apply(line + [(5, 1)])
        assert (5, 1) in moves
        assert moves[(5, 1)] == (5, 0)

    def test_leaf_pattern_kind(self):
        _, _, pats, _ = apply([(0, 0), (1, 0), (2, 0), (1, 1)])
        assert any(p.kind == "leaf" for p in pats) or any(
            p.kind == "bump" and (1, 1) in p.movers for p in pats
        )

    def test_leaf_canceled_when_target_moves(self):
        # leaf (0,1) attached to (0,0) which is itself a bump mover hopping
        # onto the leaf... construct: vertical pair on a supported row
        cells = [(0, 1), (0, 0), (1, 0), (0, -1), (1, -1), (-1, -1), (2, -1), (-1, 0)]
        state = SwarmState(cells)
        moves, pats = plan_merges(state, CFG)
        # no swap: applying never increases robot count and keeps connectivity
        before = len(state)
        state.apply_moves(moves)
        assert len(state) <= before
        assert is_connected(state.cells)


class TestCornerMerge:
    def test_corner_merges_onto_diagonal(self):
        # L-corner with occupied diagonal, padded so no bump eats it first:
        #   # #
        #   c #   c at (0,0), diagonal (1,1) occupied
        cells = [(0, 0), (1, 0), (1, 1), (0, 1), (2, 0), (2, 1), (1, 2), (2, 2)]
        # (0,0): neighbors (1,0),(0,1) perpendicular, diag (1,1) occupied
        state = SwarmState(cells)
        moves, _ = plan_merges(state, CFG)
        if (0, 0) in moves:
            assert moves[(0, 0)] == (1, 1)

    def test_corner_disabled_by_config(self):
        cfg = AlgorithmConfig(enable_corner_merges=False, enable_bump_merges=False)
        cells = [(0, 0), (1, 0), (1, 1), (2, 0), (2, 1), (1, 2), (2, 2), (0, 1)]
        moves, pats = plan_merges(SwarmState(cells), cfg)
        assert all(p.kind == "leaf" for p in pats)


class TestBumpMerge:
    def test_supported_row_drops(self):
        # 3-row on top of a wider row: the top bump hops down and merges.
        # (The floating base row moves too — robots are anonymous, so we
        # assert the top pattern and net progress, not exact cells.)
        top = [(x, 1) for x in range(3)]
        base = [(x, 0) for x in range(-1, 4)]
        state, moves, pats, merged = apply(top + base)
        assert any(
            p.kind == "bump"
            and set(p.movers) == set(top)
            and p.direction == (0, -1)
            for p in pats
        )
        assert merged >= 2
        assert is_connected(state.cells)

    def test_anchored_row_is_stationary(self):
        # with a third row below, the middle row cannot bump anywhere
        top = [(x, 2) for x in range(3)]
        mid = [(x, 1) for x in range(-1, 4)]
        bot = [(x, 0) for x in range(-1, 4)]
        _, moves, pats, _ = apply(top + mid + bot)
        assert not any(set(p.movers) == set(mid) for p in pats)
        # the top row still drops onto mid
        assert all(moves.get(c) == (c[0], 1) for c in top)

    def test_open_far_side_required(self):
        # a row sandwiched between two rows can't bump anywhere
        mid = [(x, 1) for x in range(3)]
        below = [(x, 0) for x in range(3)]
        above = [(x, 2) for x in range(3)]
        _, moves, pats, _ = apply(mid + below + above)
        assert not any(
            p.kind == "bump" and set(p.movers) == set(mid) for p in pats
        )

    def test_too_long_run_skipped(self):
        k = CFG.max_bump_length + 1
        top = [(x, 1) for x in range(k)]
        base = [(x, 0) for x in range(-1, k + 1)]
        _, _, pats, _ = apply(top + base)
        assert not any(set(p.movers) == set(top) for p in pats)

    def test_partial_support_lands_contiguously(self):
        # support only under one end: the run still hops and stays connected
        top = [(x, 1) for x in range(4)]
        base = [(0, 0), (0, -1), (1, -1), (-1, 0), (-1, -1)]
        state, moves, pats, merged = apply(top + base)
        assert merged >= 1
        assert is_connected(state.cells)

    def test_vertical_bump(self):
        left = [(1, y) for y in range(3)]
        base = [(0, y) for y in range(-1, 4)]
        state, moves, pats, merged = apply(left + base)
        assert any(
            p.kind == "bump"
            and set(p.movers) == set(left)
            and p.direction == (-1, 0)
            for p in pats
        )
        assert merged >= 2
        assert is_connected(state.cells)

    def test_disabled_by_config(self):
        cfg = AlgorithmConfig(enable_bump_merges=False)
        top = [(x, 1) for x in range(3)]
        base = [(x, 0) for x in range(-1, 4)]
        _, pats = plan_merges(SwarmState(top + base), cfg)
        assert all(p.kind != "bump" for p in pats)


class TestComposition:
    def test_perpendicular_patterns_give_diagonal(self):
        p1 = MergePattern("bump", ((0, 0),), (0, -1), frozenset())
        p2 = MergePattern("bump", ((0, 0),), (1, 0), frozenset())
        moves = compose_moves([p1, p2])
        assert moves[(0, 0)] == (1, -1)

    def test_opposite_votes_cancel(self):
        p1 = MergePattern("bump", ((0, 0),), (0, -1), frozenset())
        p2 = MergePattern("bump", ((0, 0),), (0, 1), frozenset())
        assert compose_moves([p1, p2]) == {}

    def test_solid_square_shrinks_every_round(self):
        state, moves, pats, merged = apply(
            [(x, y) for x in range(6) for y in range(6)]
        )
        # all four edge rows fold onto the interior: 6x6 -> 4x4
        assert len(state) == 16
        assert is_connected(state.cells)

    def test_corner_of_square_moves_diagonally(self):
        state = SwarmState([(x, y) for x in range(6) for y in range(6)])
        moves, _ = plan_merges(state, CFG)
        assert moves[(0, 0)] == (1, 1)
        assert moves[(5, 5)] == (4, 4)


class TestConnectivityPreservation:
    SHAPES = [
        [(x, y) for x in range(5) for y in range(5)],  # solid
        [(x, 0) for x in range(9)],  # line
        [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)],  # L
        [(x, 1) for x in range(4)] + [(x, 0) for x in range(-1, 5)],
    ]

    @pytest.mark.parametrize("shape", SHAPES)
    def test_one_round_preserves_connectivity(self, shape):
        state = SwarmState(shape)
        moves, _ = plan_merges(state, CFG)
        state.apply_moves(moves)
        assert is_connected(state.cells)


class TestRegressions:
    def test_support_corner_must_not_move(self):
        """Hypothesis-found counterexample: the corner robot at (-1, 0) is a
        support of the column bump hopping west; letting it corner-merge
        away strands the landed robots.  It must be frozen."""
        cells = [(-3, -1), (-2, -1), (-1, -1), (-1, 0), (0, -1), (0, 0), (0, 1)]
        state = SwarmState(cells)
        moves, _ = plan_merges(state, CFG)
        assert (-1, 0) not in moves
        state.apply_moves(moves)
        assert is_connected(state.cells)


class TestLocalDecision:
    """merge_move_for must agree with the global planner (locality audit)."""

    SHAPES = [
        [(x, y) for x in range(5) for y in range(5)],
        [(x, 0) for x in range(9)],
        [(x, 1) for x in range(3)] + [(x, 0) for x in range(-1, 4)],
        [(0, 0), (1, 0), (2, 0), (1, 1)],
        [(x, y) for x in range(6) for y in range(6) if x in (0, 5) or y in (0, 5)],
    ]

    @pytest.mark.parametrize("shape", SHAPES)
    def test_agreement_with_global(self, shape):
        state = SwarmState(shape)
        moves, _ = plan_merges(state, CFG)
        for robot in shape:
            local = merge_move_for(state, robot, CFG)
            assert local == moves.get(robot), f"robot {robot}"

    @pytest.mark.parametrize("shape", SHAPES)
    def test_decision_respects_viewing_radius(self, shape):
        """Evaluating against a LocalView raises on any out-of-range query."""
        state = SwarmState(shape)
        for robot in shape:
            view = LocalView(state, robot, CFG.viewing_radius)
            merge_move_for(view, robot, CFG)  # must not raise LocalityError


class TestMergeCacheRunGranular:
    """Run-granular invalidation of :class:`MergeCache` (and its
    line-granular churn twin): after any move sequence, the cached
    candidate set must equal a fresh full enumeration, under either
    strategy."""

    @staticmethod
    def candidate_set(cache):
        return {
            (p.kind, p.movers, p.direction, p.frozen)
            for p in cache.candidates()
        }

    @staticmethod
    def fresh_set(state, cfg=CFG):
        from repro.core.patterns import MergeCache

        fresh = MergeCache(cfg)
        fresh.rebuild(state)
        return TestMergeCacheRunGranular.candidate_set(fresh)

    def drive(self, cells, steps, factor, monkeypatch):
        """Run the gathering controller while forcing one strategy and
        checking the cache against a full rebuild every round."""
        import repro.core.patterns as P
        from repro.core.algorithm import GatherOnGrid
        from repro.engine.scheduler import FsyncEngine

        monkeypatch.setattr(P, "_RUN_COST_FACTOR", factor)
        ctrl = GatherOnGrid(CFG)
        eng = FsyncEngine(
            SwarmState(set(cells)), ctrl, check_connectivity=False
        )
        for _ in range(steps):
            if eng.state.is_gathered():
                break
            eng.step()
            # the cache lags one apply_moves until the next plan; sync
            # it to the post-move state before comparing
            ctrl._pipeline._sync(eng.state)
            cache = ctrl._pipeline.merge_cache
            assert self.candidate_set(cache) == self.fresh_set(eng.state)

    @pytest.mark.parametrize("factor", [0, 10**9], ids=["run", "line"])
    def test_trajectory_differential(self, factor, monkeypatch):
        from repro.swarms.generators import family

        for fam, n in (("blob", 150), ("ring", 60), ("spiral", 120)):
            self.drive(family(fam, n), 80, factor, monkeypatch)

    def _updated(self, before, moves, factor=0):
        """Apply ``moves`` to ``before`` through the cache (forcing the
        run-granular path by default) and return (cache, state)."""
        import repro.core.patterns as P
        from repro.core.patterns import MergeCache

        saved = P._RUN_COST_FACTOR
        P._RUN_COST_FACTOR = factor
        try:
            state = SwarmState(set(before))
            cache = MergeCache(CFG)
            cache.rebuild(state)
            state.apply_moves(moves)
            cache.update(state, state.last_changed)
        finally:
            P._RUN_COST_FACTOR = saved
        return cache, state

    def test_run_split_across_dirty_cell(self):
        """Vacating mid-run splits one cached run into two."""
        row = [(x, 0) for x in range(7)] + [(x, -1) for x in range(7)]
        cache, state = self._updated(row, {(3, 0): (3, -1)})
        assert self.candidate_set(cache) == self.fresh_set(state)

    def test_run_merge_across_dirty_cell(self):
        """Filling the gap between two cached runs merges them."""
        cells = [(x, 0) for x in range(7) if x != 3]
        cells += [(x, -1) for x in range(7)]
        cells += [(3, 2), (3, 1)]  # a robot that can drop into the gap
        cache, state = self._updated(cells, {(3, 1): (3, 0)})
        assert self.candidate_set(cache) == self.fresh_set(state)

    def test_free_side_flip_from_adjacent_row(self):
        """A change in row y+1 re-evaluates the run of row y whose span
        it covers, without touching the run structure of row y."""
        cells = [(x, 0) for x in range(4)] + [(x, -1) for x in range(4)]
        cells += [(0, 2)]
        # the hovering robot lands on (0, 1): row 0's north side is no
        # longer free, so its bump pattern must flip or vanish
        cache, state = self._updated(cells, {(0, 2): (0, 1)})
        assert self.candidate_set(cache) == self.fresh_set(state)

    def test_mover_status_cascade_releases_leaf(self):
        """When a bump dissolves, its former movers become eligible for
        leaf/corner candidacy again (the mover-delta bookkeeping)."""
        # two-robot bump over a support; removing the support's
        # neighbour changes bump membership and leaf eligibility nearby
        cells = [(0, 0), (1, 0), (0, -1), (2, -1), (2, 0), (3, 0)]
        cache, state = self._updated(cells, {(3, 0): (2, -1)})
        assert self.candidate_set(cache) == self.fresh_set(state)

    def test_rebuild_resets_after_external_jump(self):
        """A version jump (two applies without update) falls back to a
        rebuild via the pipeline; the cache API itself stays coherent
        when primed from scratch."""
        from repro.core.patterns import MergeCache

        state = SwarmState({(0, 0), (1, 0), (2, 0), (1, 1)})
        cache = MergeCache(CFG)
        cache.update(state, set())  # unprimed update primes via rebuild
        assert self.candidate_set(cache) == self.fresh_set(state)
