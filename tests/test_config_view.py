"""Unit tests for AlgorithmConfig validation and LocalView locality."""

import pytest

from repro.constants import MAX_BUMP_LENGTH, VIEWING_RADIUS
from repro.core.config import AlgorithmConfig
from repro.core.view import LocalView, LocalityError
from repro.grid.occupancy import SwarmState


class TestConfig:
    def test_paper_defaults(self):
        cfg = AlgorithmConfig()
        assert cfg.viewing_radius == VIEWING_RADIUS == 20
        assert cfg.run_start_interval == 22
        assert cfg.run_passing_distance == 3
        assert cfg.max_bump_length == MAX_BUMP_LENGTH

    def test_locality_budget_invariant(self):
        cfg = AlgorithmConfig()
        # every pattern decision must fit in a view (DESIGN.md Section 3)
        assert 2 * cfg.max_bump_length + 2 <= cfg.viewing_radius

    def test_rejects_tiny_radius(self):
        with pytest.raises(ValueError):
            AlgorithmConfig(viewing_radius=3)

    def test_rejects_oversized_bump(self):
        with pytest.raises(ValueError):
            AlgorithmConfig(viewing_radius=10, max_bump_length=5)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            AlgorithmConfig(run_start_interval=0)

    def test_rejects_bad_passing_distance(self):
        with pytest.raises(ValueError):
            AlgorithmConfig(run_passing_distance=0)

    def test_frozen(self):
        cfg = AlgorithmConfig()
        with pytest.raises((AttributeError, TypeError)):
            cfg.viewing_radius = 5  # type: ignore[misc]

    def test_with_radius_derives_bump_length(self):
        cfg = AlgorithmConfig.with_radius(14)
        assert cfg.viewing_radius == 14
        assert cfg.max_bump_length == 6  # largest k with 2k + 2 <= 14
        # the derived config always satisfies the locality budget
        for radius in (5, 6, 11, 20, 31):
            derived = AlgorithmConfig.with_radius(radius)
            assert 2 * derived.max_bump_length + 2 <= radius

    def test_with_radius_default_matches_paper(self):
        assert AlgorithmConfig.with_radius(20) == AlgorithmConfig()

    def test_with_radius_overrides_pass_through(self):
        cfg = AlgorithmConfig.with_radius(14, run_start_interval=11)
        assert cfg.run_start_interval == 11
        cfg = AlgorithmConfig.with_radius(14, max_bump_length=2)
        assert cfg.max_bump_length == 2


class TestLocalView:
    def test_membership_inside(self):
        state = SwarmState([(0, 0), (1, 0), (10, 0)])
        view = LocalView(state, (0, 0), radius=5)
        assert (1, 0) in view
        assert (2, 0) not in view

    def test_far_cells_excluded_from_snapshot(self):
        state = SwarmState([(0, 0), (10, 0)])
        view = LocalView(state, (0, 0), radius=5)
        assert view.cells == frozenset({(0, 0)})

    def test_query_outside_raises(self):
        view = LocalView(SwarmState([(0, 0)]), (0, 0), radius=5)
        with pytest.raises(LocalityError):
            (6, 0) in view

    def test_l1_ball_not_chebyshev(self):
        state = SwarmState([(3, 2), (3, 3)])
        view = LocalView(state, (0, 0), radius=5)
        assert (3, 2) in view  # L1 = 5, occupied
        with pytest.raises(LocalityError):
            (3, 3) in view  # L1 = 6 > 5: not queryable at all

    def test_visible_predicate(self):
        view = LocalView(SwarmState([(0, 0)]), (0, 0), radius=5)
        assert view.visible((5, 0))
        assert not view.visible((6, 0))

    def test_len(self):
        state = SwarmState([(0, 0), (1, 1), (9, 9)])
        assert len(LocalView(state, (0, 0), radius=4)) == 2
