"""Unit tests for repro.grid.occupancy.SwarmState."""

import numpy as np
import pytest

from repro.grid.occupancy import SwarmState


class TestBasics:
    def test_len_and_contains(self):
        s = SwarmState([(0, 0), (1, 0)])
        assert len(s) == 2
        assert (0, 0) in s
        assert (2, 2) not in s

    def test_duplicates_collapse(self):
        s = SwarmState([(0, 0), (0, 0)])
        assert len(s) == 1

    def test_copy_is_independent(self):
        s = SwarmState([(0, 0)])
        c = s.copy()
        c.cells.add((5, 5))
        assert (5, 5) not in s

    def test_frozen_snapshot(self):
        s = SwarmState([(0, 0)])
        snap = s.frozen()
        s.cells.add((1, 1))
        assert snap == frozenset({(0, 0)})

    def test_equality(self):
        assert SwarmState([(0, 0), (1, 1)]) == SwarmState([(1, 1), (0, 0)])

    def test_bad_cell_type_raises(self):
        with pytest.raises(TypeError):
            SwarmState([(0.5, 1)])


class TestNeighborQueries:
    def test_degree(self):
        s = SwarmState([(0, 0), (1, 0), (0, 1), (-1, 0), (0, -1)])
        assert s.degree((0, 0)) == 4
        assert s.degree((1, 0)) == 1

    def test_occupied_neighbors4(self):
        s = SwarmState([(0, 0), (1, 0), (1, 1)])
        assert set(s.occupied_neighbors4((0, 0))) == {(1, 0)}

    def test_occupied_neighbors8_includes_diagonal(self):
        s = SwarmState([(0, 0), (1, 1)])
        assert set(s.occupied_neighbors8((0, 0))) == {(1, 1)}

    def test_is_boundary(self):
        s = SwarmState(
            [(x, y) for x in range(3) for y in range(3)]
        )
        assert s.is_boundary((0, 0))
        assert not s.is_boundary((1, 1))  # interior, degree 4


class TestGeometry:
    def test_bounding_box(self):
        s = SwarmState([(1, 2), (4, -1)])
        assert s.bounding_box() == (1, -1, 4, 2)

    def test_diameter(self):
        s = SwarmState([(0, 0), (3, 1)])
        assert s.diameter_chebyshev() == 3

    def test_is_gathered_2x2(self):
        assert SwarmState([(0, 0), (1, 0), (0, 1), (1, 1)]).is_gathered()
        assert not SwarmState([(0, 0), (2, 0)]).is_gathered()

    def test_single_robot_gathered(self):
        assert SwarmState([(7, 7)]).is_gathered()

    def test_to_array_sorted(self):
        s = SwarmState([(1, 0), (0, 0)])
        arr = s.to_array()
        assert arr.shape == (2, 2)
        assert (arr == np.array([[0, 0], [1, 0]])).all()

    def test_to_array_empty(self):
        assert SwarmState([]).to_array().shape == (0, 2)


class TestApplyMoves:
    def test_plain_move(self):
        s = SwarmState([(0, 0)])
        merged = s.apply_moves({(0, 0): (1, 1)})
        assert merged == 0
        assert s.cells == {(1, 1)}

    def test_merge_on_collision(self):
        s = SwarmState([(0, 0), (1, 0)])
        merged = s.apply_moves({(0, 0): (1, 0)})
        assert merged == 1
        assert s.cells == {(1, 0)}

    def test_two_movers_merge_midair(self):
        s = SwarmState([(0, 0), (2, 0)])
        merged = s.apply_moves({(0, 0): (1, 0), (2, 0): (1, 0)})
        assert merged == 1
        assert s.cells == {(1, 0)}

    def test_swap_does_not_merge(self):
        s = SwarmState([(0, 0), (1, 0)])
        merged = s.apply_moves({(0, 0): (1, 0), (1, 0): (0, 0)})
        assert merged == 0
        assert s.cells == {(0, 0), (1, 0)}

    def test_illegal_long_move_rejected(self):
        s = SwarmState([(0, 0)])
        with pytest.raises(ValueError):
            s.apply_moves({(0, 0): (2, 0)})

    def test_unknown_source_rejected(self):
        s = SwarmState([(0, 0)])
        with pytest.raises(KeyError):
            s.apply_moves({(5, 5): (5, 6)})

    def test_empty_moves_noop(self):
        s = SwarmState([(0, 0)])
        assert s.apply_moves({}) == 0
        assert s.cells == {(0, 0)}

    def test_mover_lands_on_cell_vacated_this_round(self):
        # (2,0) steps onto (1,0) in the same round (1,0) vacates: both
        # survive — FSYNC applies all moves simultaneously.
        s = SwarmState([(0, 0), (1, 0), (2, 0)])
        merged = s.apply_moves({(1, 0): (0, 0), (2, 0): (1, 0)})
        assert merged == 1  # only (1,0) -> (0,0) merged
        assert s.cells == {(0, 0), (1, 0)}
        assert s.last_changed == {(2, 0)}

    def test_chained_vacate_and_fill(self):
        # a whole column shifts down one cell: net change is only the ends
        s = SwarmState([(0, y) for y in range(4)])
        merged = s.apply_moves({(0, y): (0, y - 1) for y in range(1, 4)})
        assert merged == 1  # (0,1) merged onto the stationary (0,0)
        assert s.cells == {(0, 0), (0, 1), (0, 2)}
        assert s.last_changed == {(0, 3)}


class TestDirtyTracking:
    def test_plain_move_changed_cells(self):
        s = SwarmState([(0, 0), (1, 0)])
        s.apply_moves({(0, 0): (0, 1)})
        assert s.last_changed == {(0, 0), (0, 1)}
        assert s.version == 1

    def test_swap_changes_nothing(self):
        s = SwarmState([(0, 0), (1, 0)])
        s.apply_moves({(0, 0): (1, 0), (1, 0): (0, 0)})
        assert s.last_changed == frozenset()
        assert s.version == 1

    def test_merge_changed_is_source_only(self):
        s = SwarmState([(0, 0), (1, 0)])
        s.apply_moves({(0, 0): (1, 0)})
        assert s.last_changed == {(0, 0)}

    def test_empty_moves_still_bump_version(self):
        s = SwarmState([(0, 0)])
        s.apply_moves({})
        assert s.version == 1 and s.last_changed == frozenset()


class TestValidatedFastPath:
    def test_from_validated_adopts_set(self):
        cells = {(0, 0), (1, 0)}
        s = SwarmState.from_validated(cells)
        assert len(s) == 2 and (1, 0) in s

    def test_copy_skips_validation_but_is_equal(self):
        s = SwarmState([(0, 0), (2, 1)])
        c = s.copy()
        assert c == s
        c.apply_moves({(0, 0): (1, 1)})
        assert (0, 0) in s  # independent


class TestRowColIndices:
    def test_indices_track_moves(self):
        s = SwarmState([(0, 0), (1, 0), (2, 0)])
        assert s.rows() == {0: [0, 1, 2]}
        s.apply_moves({(2, 0): (2, 1)})
        assert s.rows() == {0: [0, 1], 1: [2]}
        assert s.cols() == {0: [0], 1: [0], 2: [1]}

    def test_bounding_box_tracks_moves(self):
        s = SwarmState([(0, 0), (1, 0), (2, 0)])
        assert s.bounding_box() == (0, 0, 2, 0)
        s.apply_moves({(2, 0): (1, 1)})
        assert s.bounding_box() == (0, 0, 1, 1)
        s.apply_moves({(1, 1): (1, 0)})
        assert s.bounding_box() == (0, 0, 1, 0)

    def test_move_robot_keeps_indices(self):
        s = SwarmState([(0, 0), (1, 0)])
        s.rows()  # build indices
        assert s.move_robot((1, 0), (0, 0)) is True  # merge
        assert s.rows() == {0: [0]}
        assert s.bounding_box() == (0, 0, 0, 0)
