"""The SSYNC + fault-injection scheduling subsystem.

Five layers:

1. **FSYNC anchor** — ``ssync`` with activation probability 1.0 and zero
   faults reproduces ``fsync`` trajectories *exactly*, for every
   strategy that supports FSYNC (the contract that makes SSYNC results
   comparable to the paper's claims).
2. **Determinism** — the same seed yields an identical result digest
   across repeated runs and across process-pool worker counts (seeded
   activation/fault schedules, no hidden global state).
3. **Fairness and policies** — the k-fairness bound is enforced (no
   fault-free robot sleeps k consecutive rounds), round-robin covers the
   roster, the adversarial policy starves the grid algorithm's runners
   until fairness forces them awake.
4. **Faults** — crash-stopped robots freeze in place forever (grid cells
   pinned, Euclidean indices frozen), sleep faults are logged, and fault
   draws do not perturb the activation schedule of the survivors.
5. **Surface** — registry entries, option validation naming the
   registered schedulers, ``connectivity_lost`` termination semantics.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import SweepJob, run_jobs, run_robustness
from repro.api import SCHEDULERS, STRATEGIES, simulate
from repro.engine.faults import FaultInjector
from repro.engine.protocols import Scenario
from repro.engine.ssync_scheduler import (
    ACTIVATION_POLICIES,
    ActivationSchedule,
    RoundRobinActivation,
    UniformActivation,
    make_policy,
)
from repro.swarms.generators import ring

#: Strategies whose FSYNC trajectories the full-activation SSYNC run
#: must reproduce bit-for-bit.
FSYNC_STRATEGIES = sorted(
    key for key, s in STRATEGIES.items() if "fsync" in s.schedulers
)


def digest(result):
    """Order-sensitive fingerprint of a run (for determinism checks)."""
    return (
        result.rounds,
        result.gathered,
        result.robots_final,
        result.activations,
        tuple(sorted(result.events.counts().items())),
        None if result.trajectory is None else tuple(result.trajectory),
    )


class TestFsyncAnchor:
    @pytest.mark.parametrize("key", FSYNC_STRATEGIES)
    def test_full_activation_reproduces_fsync(self, key):
        scn = STRATEGIES[key].compare_scenario(20)
        kwargs = dict(
            strategy=key,
            seed=3,
            check_connectivity=False,
            record_trajectory=True,
        )
        fsync = simulate(scn, scheduler="fsync", **kwargs)
        ssync = simulate(
            scn,
            scheduler="ssync",
            activation_p=1.0,
            sleep_rate=0.0,
            crash_rate=0.0,
            **kwargs,
        )
        assert ssync.rounds == fsync.rounds
        assert ssync.gathered == fsync.gathered
        assert ssync.trajectory == fsync.trajectory
        assert len(ssync.metrics) == len(fsync.metrics)

    def test_full_activation_counts_everyone(self):
        result = simulate(
            ring(12), scheduler="ssync", activation_p=1.0, max_rounds=3
        )
        # every robot is activated every round
        per_round = [e.data["active"] for e in
                     result.events.of_kind("activation")]
        robots = [m.robots for m in result.metrics]
        assert per_round[0] == result.robots_initial
        assert all(a == r for a, r in zip(per_round[1:], robots))


class TestDeterminism:
    @pytest.mark.parametrize("scheduler", ["ssync", "ssync-faulty"])
    def test_same_seed_same_digest(self, scheduler):
        def run():
            return simulate(
                Scenario(family="blob", n=24, seed=7),
                scheduler=scheduler,
                seed=7,
                check_connectivity=False,
                record_trajectory=True,
            )

        assert digest(run()) == digest(run())

    def test_digest_independent_of_worker_count(self):
        jobs = [
            SweepJob(
                family="line",
                n=n,
                seed=5,
                check_connectivity=False,
                strategy="grid",
                scheduler="ssync",
                options=(("activation_p", 0.8), ("k_fairness", 6)),
            )
            for n in (12, 16, 20)
        ]
        serial = run_jobs(jobs, workers=None)
        parallel = run_jobs(jobs, workers=2)
        assert serial == parallel

    def test_robustness_sweep_parallel_equals_serial(self):
        args = (["grid", "async_greedy"], [0.6, 1.0], 12)
        kwargs = dict(seed=2, max_rounds=500)
        assert run_robustness(*args, **kwargs) == run_robustness(
            *args, workers=2, **kwargs
        )

    def test_seed_changes_schedule(self):
        runs = {
            seed: simulate(
                ring(16),
                scheduler="ssync",
                seed=seed,
                check_connectivity=False,
                record_trajectory=True,
            )
            for seed in (1, 2)
        }
        assert runs[1].trajectory != runs[2].trajectory


class TestFairnessAndPolicies:
    def test_schedule_enforces_k_fairness(self):
        # A policy that never chooses anyone: only forcing activates.
        schedule = ActivationSchedule(UniformActivation(0.0), k_fairness=4)
        roster = list(range(6))
        activated_at = {t: [] for t in roster}
        for r in range(12):
            active = schedule.select(r, roster)
            for t in active:
                activated_at[t].append(r)
            for t in roster:
                assert schedule.streak_of(t) <= 3
            schedule.commit(active, survivors=roster)
        # forced awake exactly when the streak hits k-1
        assert all(rounds == [3, 7, 11] for rounds in activated_at.values())

    def test_zero_probability_is_fsync_every_k_rounds(self):
        fsync = simulate(Scenario(family="ring", n=20))
        lazy = simulate(
            Scenario(family="ring", n=20),
            scheduler="ssync",
            activation_p=0.0,
            k_fairness=3,
            check_connectivity=False,
        )
        # k-1 all-idle rounds, then one full FSYNC round, repeated
        assert lazy.gathered
        assert lazy.rounds == 3 * fsync.rounds

    def test_round_robin_partitions_roster(self):
        policy = RoundRobinActivation(k=3)
        roster = list(range(10))
        seen = set()
        for r in range(3):
            seen |= policy.select(r, roster, frozenset())
        assert seen == set(roster)

    def test_adversarial_starves_runners_until_forced(self):
        result = simulate(
            Scenario(family="ring", n=24),
            scheduler="ssync",
            activation="adversarial",
            k_fairness=5,
            check_connectivity=False,
            max_rounds=60,
        )
        forced = [
            e.data["forced"] for e in result.events.of_kind("activation")
        ]
        # the starved runners are eventually forced awake by fairness
        assert any(forced), "adversarial run never needed forcing"

    def test_unknown_policy_is_loud(self):
        with pytest.raises(KeyError, match="unknown activation policy"):
            make_policy("lazy")
        assert set(ACTIVATION_POLICIES) == {
            "uniform",
            "round_robin",
            "adversarial",
            "scripted",
        }

    def test_scripted_policy_requires_a_schedule(self):
        with pytest.raises(ValueError, match="schedule"):
            make_policy("scripted")
        with pytest.raises(ValueError, match="scripted"):
            simulate(
                ring(8),
                scheduler="ssync",
                activation="uniform",
                schedule=[(0,)],
                check_connectivity=False,
            )

    def test_scripted_policy_follows_the_script_then_fsync(self):
        policy = make_policy("scripted", schedule=[(0, 2), ()])
        roster = list(range(4))
        assert policy.select(0, roster, frozenset()) == {0, 2}
        assert policy.select(1, roster, frozenset()) == set()
        # past the script's end: FSYNC tail over whoever is alive
        assert policy.select(2, roster, frozenset()) == set(roster)
        assert policy.select(7, [1, 3], frozenset()) == {1, 3}

    def test_inapplicable_policy_parameter_rejected(self):
        with pytest.raises(ValueError, match="activation_p applies only"):
            simulate(
                ring(8),
                scheduler="ssync",
                activation="round_robin",
                activation_p=0.2,
                check_connectivity=False,
            )
        with pytest.raises(ValueError, match="rr_k applies only"):
            simulate(
                ring(8),
                scheduler="ssync",
                activation="adversarial",
                rr_k=4,
                check_connectivity=False,
            )

    def test_adversarial_hints_reach_stepped_programs(self):
        # With mover hints flowing, the adversary starves last round's
        # movers, so the activated halves alternate and no robot's
        # streak ever reaches the fairness bound.  The no-hints fallback
        # starves a *fixed* half, which only ever acts via forcing — so
        # forcing firing here would mean the hints were dropped.
        result = simulate(
            Scenario(family="circle", n=12),
            strategy="euclidean",
            scheduler="ssync",
            activation="adversarial",
            k_fairness=4,
            max_rounds=40,
        )
        assert result.gathered
        assert all(
            e.data["forced"] == []
            for e in result.events.of_kind("activation")
        )


class TestFaults:
    def test_crashed_grid_robot_pins_its_cell(self):
        frames = []
        result = simulate(
            Scenario(family="ring", n=24),
            scheduler="ssync-faulty",
            crash_rate=0.02,
            sleep_rate=0.0,
            activation_p=0.9,
            seed=11,
            check_connectivity=False,
            max_rounds=120,
            on_round=lambda i, s: frames.append(frozenset(s.cells)),
        )
        crashes = [
            e
            for e in result.events.of_kind("fault")
            if e.data["fault"] == "crash"
        ]
        assert crashes, "seed 11 must produce at least one crash"
        for event in crashes:
            cell = event.data["cell"]
            assert all(cell in f for f in frames[event.round_index:]), (
                f"crashed robot at {cell} moved after round "
                f"{event.round_index}"
            )

    def test_crashed_euclidean_robot_freezes(self):
        frames = []
        result = simulate(
            Scenario(family="circle", n=10),
            strategy="euclidean",
            scheduler="ssync-faulty",
            crash_rate=0.1,
            sleep_rate=0.0,
            activation_p=1.0,
            seed=7,
            max_rounds=30,
            on_round=lambda i, s: frames.append(tuple(s.cells)),
        )
        crashes = [
            e
            for e in result.events.of_kind("fault")
            if e.data["fault"] == "crash"
        ]
        assert crashes
        for event in crashes:
            idx = event.data["robot"]
            positions = {
                frames[r][idx]
                for r in range(event.round_index, len(frames))
            }
            assert len(positions) == 1

    def test_sleep_faults_are_logged(self):
        result = simulate(
            ring(16),
            scheduler="ssync-faulty",
            sleep_rate=0.3,
            activation_p=1.0,
            seed=4,
            check_connectivity=False,
            max_rounds=40,
        )
        sleeps = [
            e
            for e in result.events.of_kind("fault")
            if e.data["fault"] == "sleep"
        ]
        assert sleeps and all(e.data["robots"] for e in sleeps)

    def test_fault_rates_validated(self):
        with pytest.raises(ValueError, match="probability"):
            FaultInjector(sleep_rate=1.5)
        with pytest.raises(ValueError, match="probability"):
            simulate(
                ring(8),
                scheduler="ssync-faulty",
                crash_rate=-0.1,
                check_connectivity=False,
            )

    def test_ssync_default_is_fault_free(self):
        result = simulate(
            ring(16), scheduler="ssync", seed=1, check_connectivity=False
        )
        assert not result.events.of_kind("fault")


class TestSurface:
    def test_registry_entries(self):
        assert {"ssync", "ssync-faulty"} <= set(SCHEDULERS)
        for key, strat in STRATEGIES.items():
            assert "ssync" in strat.schedulers, key
            assert "ssync-faulty" in strat.schedulers, key

    @pytest.mark.parametrize("key", sorted(STRATEGIES))
    def test_every_strategy_runs_under_ssync(self, key):
        result = simulate(
            STRATEGIES[key].compare_scenario(12),
            strategy=key,
            scheduler="ssync",
            check_connectivity=False,
            seed=1,
            max_rounds=400,
        )
        assert result.scheduler == "ssync"
        assert len(result.metrics) == result.rounds
        assert len(result.events.of_kind("activation")) == result.rounds

    def test_unknown_scheduler_option_names_registry(self):
        with pytest.raises(TypeError, match="registered schedulers"):
            simulate(ring(8), scheduler="ssync", fault_mode="byzantine")

    def test_non_ssync_scheduler_rejects_ssync_options(self):
        with pytest.raises(TypeError) as excinfo:
            simulate(ring(8), sleep_rate=0.1)
        message = str(excinfo.value)
        assert "'ssync'" in message and "'ssync-faulty'" in message

    def test_connectivity_loss_terminates_cleanly(self):
        # Under partial activation the paper's algorithm may break its
        # FSYNC-only safety invariant; the SSYNC engine reports that as
        # an outcome instead of raising.
        result = simulate(
            Scenario(family="ring", n=28),
            scheduler="ssync",
            activation_p=0.5,
            seed=1,
        )
        assert not result.gathered
        assert len(result.events.of_kind("connectivity_violation")) == 1
        assert len(result.events.of_kind("connectivity_lost")) == 1

    def test_global_total_moves_counts_applied_only(self):
        result = simulate(
            Scenario(family="line", n=16),
            strategy="global",
            scheduler="ssync",
            activation_p=0.5,
            seed=3,
            check_connectivity=False,
        )
        # a move both planned and activated is at most one activation
        assert result.extras["total_moves"] <= result.activations

    def test_chain_roster_ids_survive_contractions(self):
        result = simulate(
            Scenario(family="hairpin", n=21),
            strategy="chain",
            scheduler="ssync-faulty",
            sleep_rate=0.2,
            seed=3,
        )
        assert result.robots_final < result.robots_initial
        assert len(result.metrics) == result.rounds


class TestScheduleFuzz:
    """Seeded schedule fuzzing through the ``scripted`` policy: random
    explicit activation scripts must uphold the same invariants as the
    stochastic policies, and the all-tokens script is the FSYNC anchor
    in scripted clothing."""

    @staticmethod
    def _random_schedule(n_tokens, rounds, seed, p=0.7):
        import random

        rng = random.Random(seed)
        return [
            tuple(t for t in range(n_tokens) if rng.random() < p)
            for _ in range(rounds)
        ]

    def test_all_tokens_script_reproduces_fsync(self):
        from repro.trace.replay import replay_schedule

        cells = sorted(ring(14))
        fsync = simulate(cells, record_trajectory=True)
        schedule = [tuple(range(len(cells)))] * fsync.rounds
        scripted = replay_schedule(cells, schedule)
        assert scripted.rounds == fsync.rounds
        assert scripted.gathered

    def test_fuzzed_scripts_uphold_invariants(self):
        """Over a batch of seeded random scripts: robot counts never
        increase, and a connectivity violation ends the run that same
        round — as ``connectivity_lost``, or as ``gathered`` when the
        split state still fits the gathering box (the engine checks
        the bounding-box gathering predicate first)."""
        from repro.swarms.generators import random_blob
        from repro.trace.replay import replay_schedule

        outcomes = set()
        for seed in range(12):
            cells = sorted(random_blob(10, seed))
            schedule = self._random_schedule(len(cells), 30, seed)
            counts = []
            result = replay_schedule(
                cells,
                schedule,
                max_rounds=120,
                on_round=lambda i, s: counts.append(len(s)),
            )
            assert all(a >= b for a, b in zip(counts, counts[1:]))
            violations = result.events.of_kind("connectivity_violation")
            lost = result.events.of_kind("connectivity_lost")
            assert len(violations) <= 1
            assert len(lost) <= len(violations)
            if violations:
                assert result.rounds == violations[0].round_index + 1
                if result.gathered:
                    assert not lost
                else:
                    assert len(lost) == 1
                    outcomes.add("broken")
            else:
                assert not lost
            if result.gathered:
                outcomes.add("gathered")
        # the fuzz batch must actually exercise both outcomes
        assert outcomes == {"broken", "gathered"}

    def test_scripted_replay_is_deterministic(self):
        from repro.swarms.generators import random_blob
        from repro.trace.replay import replay_schedule

        cells = sorted(random_blob(12, 3))
        schedule = self._random_schedule(len(cells), 20, seed=9)

        def run():
            return replay_schedule(cells, schedule, max_rounds=80)

        assert digest(run()) == digest(run())

    def test_explorer_witness_replays_through_stock_scheduler(self):
        """End to end: an explorer-found counterexample drives the real
        SSYNC scheduler to the exact predicted per-round cells."""
        from repro.explore import build_witness, explore, verify_witness

        dag = explore([(0, 0), (0, 1), (0, 2), (1, 0)])
        witness = build_witness(dag, target=dag.first("disconnected").key)
        assert verify_witness(witness)
        result = simulate(
            list(witness.initial),
            scheduler="ssync",
            activation="scripted",
            schedule=[list(s) for s in witness.schedule],
            k_fairness=witness.fairness_k,
        )
        assert not result.gathered
        violations = result.events.of_kind("connectivity_violation")
        assert [e.round_index for e in violations] == [
            witness.violation_round
        ]
        assert result.events.of_kind("connectivity_lost")
