"""Unit tests for the ASYNC fair-scheduler engine."""

import pytest

from repro.engine.async_scheduler import AsyncEngine
from repro.engine.errors import ConnectivityViolation
from repro.grid.occupancy import SwarmState


class StayController:
    def activate(self, state, robot):
        return robot


class LeafMerger:
    """Leaves hop onto their only neighbor (sequentially safe)."""

    def activate(self, state, robot):
        nbrs = state.occupied_neighbors4(robot)
        if len(nbrs) == 1 and len(state) > 2:
            return nbrs[0]
        return robot


class TestAsyncEngine:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AsyncEngine(SwarmState([]), StayController())

    def test_stay_runs_out_budget(self):
        eng = AsyncEngine(SwarmState([(i, 0) for i in range(5)]), StayController())
        result = eng.run(max_rounds=4)
        assert not result.gathered
        assert result.rounds == 4
        assert result.activations == 0

    def test_leaf_merging_gathers_line(self):
        eng = AsyncEngine(SwarmState([(i, 0) for i in range(10)]), LeafMerger())
        result = eng.run()
        assert result.gathered
        assert result.robots_final <= 2

    def test_fairness_round_counts_each_robot_once(self):
        # per round each robot is activated at most once, so a 10-line needs
        # several rounds (leaves merge from both ends; later robots see the
        # updated state within the same round)
        eng = AsyncEngine(SwarmState([(i, 0) for i in range(10)]), LeafMerger())
        result = eng.run()
        assert result.rounds >= 2

    def test_seed_determinism(self):
        r1 = AsyncEngine(
            SwarmState([(i, 0) for i in range(12)]), LeafMerger(), seed=7
        ).run()
        r2 = AsyncEngine(
            SwarmState([(i, 0) for i in range(12)]), LeafMerger(), seed=7
        ).run()
        assert r1.rounds == r2.rounds
        assert r1.activations == r2.activations

    def test_seed_determinism_full_results(self):
        # two runs with the same seed are identical in every observable:
        # final cells, per-round metric series, diameters — not just counts
        def run():
            eng = AsyncEngine(
                SwarmState([(i, 0) for i in range(14)]),
                LeafMerger(),
                seed=123,
            )
            result = eng.run()
            series = [
                (m.round_index, m.robots, m.merged, m.diameter)
                for m in result.metrics
            ]
            return result, series, eng.state.frozen()

        r1, s1, f1 = run()
        r2, s2, f2 = run()
        assert (r1.rounds, r1.activations, r1.robots_final) == (
            r2.rounds,
            r2.activations,
            r2.robots_final,
        )
        assert s1 == s2
        assert f1 == f2

    def test_move_robot_keeps_geometry_queries_exact(self):
        # the engine mutates state via move_robot; bounding-box queries
        # (used by the per-round metrics) must stay exact throughout
        eng = AsyncEngine(
            SwarmState([(i, 0) for i in range(8)]), LeafMerger(), seed=1
        )
        while not eng.state.is_gathered():
            eng.step_round()
            from repro.grid.geometry import bounding_box

            assert eng.state.bounding_box() == bounding_box(eng.state.cells)

    def test_illegal_move_rejected(self):
        class Jumper:
            def activate(self, state, robot):
                return (robot[0] + 3, robot[1])

        eng = AsyncEngine(SwarmState([(0, 0), (1, 0), (2, 0)]), Jumper())
        with pytest.raises(ValueError):
            eng.step_round()

    def test_connectivity_enforced(self):
        class Breaker:
            def activate(self, state, robot):
                if robot == (1, 0):
                    return (1, 1)
                return robot

        eng = AsyncEngine(SwarmState([(0, 0), (1, 0), (2, 0)]), Breaker())
        with pytest.raises(ConnectivityViolation):
            eng.step_round()


class TestIncrementalConnectivity:
    """The per-activation ``locally_connected_after`` certificate must
    never change observable behavior vs the seed's full-BFS-per-activation
    (single-robot moves are the certificate's easiest case)."""

    def _run(self, incremental):
        from repro.baselines.async_greedy import AsyncGreedyGatherer
        from repro.swarms.generators import random_blob, ring

        results = []
        for cells in (ring(10), random_blob(60, 5)):
            eng = AsyncEngine(
                SwarmState(cells),
                AsyncGreedyGatherer(),
                seed=42,
                incremental_connectivity=incremental,
            )
            r = eng.run()
            series = [
                (m.round_index, m.robots, m.merged, m.diameter)
                for m in r.metrics
            ]
            results.append(
                (r.gathered, r.rounds, r.activations, series, eng.state.frozen())
            )
        return results

    def test_certificate_mode_bit_identical(self):
        assert self._run(True) == self._run(False)

    def test_certificate_mode_deterministic(self):
        assert self._run(True) == self._run(True)

    def test_breaker_still_caught_with_certificate(self):
        # the certificate is sound: a disconnecting move must still raise
        class Breaker:
            def activate(self, state, robot):
                if robot == (1, 0):
                    return (1, 1)
                return robot

        eng = AsyncEngine(
            SwarmState([(0, 0), (1, 0), (2, 0)]),
            Breaker(),
            incremental_connectivity=True,
        )
        with pytest.raises(ConnectivityViolation):
            eng.step_round()

    def test_disconnected_initial_swarm_rejected(self):
        # the certificate is only sound relative to a connected swarm, so
        # (like FsyncEngine) disconnected input is rejected up front
        with pytest.raises(ValueError):
            AsyncEngine(
                SwarmState([(0, 0), (1, 0), (10, 10), (11, 10)]),
                StayController(),
            )
