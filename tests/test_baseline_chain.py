"""Unit tests for the chain-shortening baseline ([KM09] flavour)."""

import pytest

from repro.baselines.chain import (
    ChainShortener,
    hairpin_chain,
    shorten_chain,
    zigzag_chain,
)
from repro.grid.geometry import chebyshev


class TestConstruction:
    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            ChainShortener([(0, 0)])

    def test_non_adjacent_rejected(self):
        with pytest.raises(ValueError):
            ChainShortener([(0, 0), (3, 0)])

    def test_optimal_length(self):
        s = ChainShortener([(0, 0), (1, 1), (2, 2), (3, 3)])
        assert s.optimal_length == 4
        assert s.is_minimal()


class TestShortening:
    def test_detour_removed(self):
        # a chain with a bump: (0,0)-(0,1)-(1,1)-(1,0)-(2,0), endpoints
        # distance 2 -> optimal length 3
        r = shorten_chain([(0, 0), (0, 1), (1, 1), (1, 0), (2, 0)])
        assert r.shortened
        assert r.final_length == r.optimal_length == 3

    def test_endpoints_fixed(self):
        chain = zigzag_chain(6)
        s = ChainShortener(chain)
        res = s.run()
        assert s.chain[0] == chain[0]
        assert s.chain[-1] == chain[-1]
        assert res.shortened

    def test_links_stay_adjacent_every_round(self):
        s = ChainShortener(zigzag_chain(8, amplitude=4))
        for _ in range(200):
            if s.is_minimal():
                break
            s.step()
            for a, b in zip(s.chain, s.chain[1:]):
                assert chebyshev(a, b) <= 1

    def test_zigzag_shortens_to_optimal(self):
        chain = zigzag_chain(10, amplitude=3)
        r = shorten_chain(chain)
        assert r.shortened
        assert r.final_length == r.optimal_length

    def test_linear_rounds(self):
        """[KM09]'s regime: rounds grow linearly with chain length."""
        lengths, rounds = [], []
        for steps in (6, 12, 24):
            chain = zigzag_chain(steps, amplitude=3)
            r = shorten_chain(chain)
            assert r.shortened
            lengths.append(r.initial_length)
            rounds.append(max(r.rounds, 1))
        # doubling the chain roughly doubles (not quadruples) the rounds
        assert rounds[2] <= 4 * rounds[1]
        assert rounds[1] <= 4 * rounds[0]

    def test_already_minimal_zero_rounds(self):
        r = shorten_chain([(0, 0), (1, 0), (2, 0)])
        assert r.rounds == 0 and r.shortened


class TestHairpins:
    def test_valid_chain(self):
        chain = hairpin_chain(10)
        for a, b in zip(chain, chain[1:]):
            assert chebyshev(a, b) <= 1

    def test_shortens_to_optimal(self):
        r = shorten_chain(hairpin_chain(20))
        assert r.shortened
        assert r.final_length == r.optimal_length == 3

    def test_linear_propagation(self):
        """Hairpins force propagation: rounds ~ depth (the [KM09] regime)."""
        r16 = shorten_chain(hairpin_chain(16))
        r32 = shorten_chain(hairpin_chain(32))
        assert r16.shortened and r32.shortened
        assert 1.5 <= r32.rounds / r16.rounds <= 3.0

    def test_bad_args(self):
        with pytest.raises(ValueError):
            hairpin_chain(0)


class TestZigzagGenerator:
    def test_valid_chain(self):
        chain = zigzag_chain(5, amplitude=2)
        for a, b in zip(chain, chain[1:]):
            assert chebyshev(a, b) <= 1

    def test_zigzag_collapses_in_constant_rounds(self):
        """All of a zigzag's detours are simultaneously redundant, so the
        round count does not grow with length (contrast with hairpins)."""
        r_small = shorten_chain(zigzag_chain(8, amplitude=3))
        r_big = shorten_chain(zigzag_chain(64, amplitude=3))
        assert r_big.rounds <= r_small.rounds + 3

    def test_bad_args(self):
        with pytest.raises(ValueError):
            zigzag_chain(0)
