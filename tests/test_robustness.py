"""The time-model-gap stack: async-lcm, byzantine faults, tolerance, D4.

Five layers:

1. **ASYNC anchor** — ``async-lcm`` with staleness 0 and full
   activation reproduces ``fsync`` trajectories *exactly* for every
   strategy that supports both (the contract that anchors the true
   ASYNC model to the paper's FSYNC claims), and staleness > 0 runs
   are seed-deterministic.
2. **Byzantine model** — seeded byzantine roles/behaviors are
   deterministic, surface as ``byzantine`` events and the
   ``byzantine_actions`` counter, and are rejected loudly on
   self-clocked (non-grid-state) programs.
3. **Fault-draw churn invariance** — :class:`FaultInjector` draws are
   pure functions of ``(seed, class, token, round)``: removing robots
   from the roster never shifts the survivors' schedule, and enabling
   one fault class never perturbs another.
4. **Tolerant variant** — the subset-safe move filter is certified
   unbreakable by the explorer at small n while the stock algorithm is
   breakable on the same shapes.
5. **D4 symmetry** — the rotation/reflection-folded dedup key reaches
   the same certification verdicts as the exact translation-only key,
   with no larger DAGs, while witness reconstruction refuses D4 DAGs.
"""

from __future__ import annotations

import pytest

from repro.analysis.certification import run_certification
from repro.api import STRATEGIES, simulate
from repro.engine.faults import BYZANTINE_BEHAVIORS, FaultInjector
from repro.explore.driver import explore
from repro.explore.witness import build_witness
from repro.swarms.generators import ring

#: Strategies runnable under both fsync and async-lcm: the Δ=0 anchor
#: must hold for every one of them.
ANCHOR_STRATEGIES = sorted(
    key
    for key, s in STRATEGIES.items()
    if "fsync" in s.schedulers and "async-lcm" in s.schedulers
)

#: The L-tetromino — a stock-breakable seed shape (16/19 at n=4).
L_TETROMINO = [(0, 0), (0, 1), (0, 2), (1, 0)]

#: Verdict-level certification row fields that must not depend on the
#: explorer's dedup symmetry group.
VERDICT_KEYS = (
    "n",
    "shapes",
    "complete",
    "max_fsync_rounds",
    "fsync_path_consistent",
    "breakable_shapes",
    "min_violation_round",
    "symmetry_consistent",
    "ok",
)


def digest(result):
    """Order-insensitive fingerprint of a run for determinism checks."""
    return (
        result.rounds,
        result.gathered,
        result.robots_final,
        result.activations,
        result.byzantine_actions,
        tuple(sorted(result.events.counts().items())),
        tuple(result.trajectory) if result.trajectory else None,
    )


class TestAsyncLcmAnchor:
    @pytest.mark.parametrize("key", ANCHOR_STRATEGIES)
    def test_zero_staleness_full_activation_reproduces_fsync(self, key):
        scn = STRATEGIES[key].compare_scenario(20)
        kwargs = dict(
            strategy=key, seed=3, check_connectivity=False,
            record_trajectory=True,
        )
        fsync = simulate(scn, scheduler="fsync", **kwargs)
        alcm = simulate(
            scn,
            scheduler="async-lcm",
            staleness=0,
            activation_p=1.0,
            sleep_rate=0.0,
            crash_rate=0.0,
            **kwargs,
        )
        assert alcm.rounds == fsync.rounds
        assert alcm.gathered == fsync.gathered
        assert alcm.trajectory == fsync.trajectory  # bit-identical
        assert len(alcm.metrics) == len(fsync.metrics)

    def test_positive_staleness_is_deterministic(self):
        kwargs = dict(
            scheduler="async-lcm", staleness=2, activation_p=0.7,
            seed=5, check_connectivity=False, record_trajectory=True,
            max_rounds=500,
        )
        r1 = simulate(ring(16), **kwargs)
        r2 = simulate(ring(16), **kwargs)
        assert digest(r1) == digest(r2)

    def test_staleness_changes_the_schedule(self):
        # Δ > 0 must actually decouple the cycle: the run differs from
        # the atomic-SSYNC run under the same seed and activation law.
        base = dict(
            activation_p=0.7, seed=5, check_connectivity=False,
            record_trajectory=True, max_rounds=500,
        )
        atomic = simulate(ring(16), scheduler="ssync", **base)
        stale = simulate(
            ring(16), scheduler="async-lcm", staleness=3, **base
        )
        assert stale.trajectory != atomic.trajectory

    def test_steppable_programs_reject_positive_staleness(self):
        scn = STRATEGIES["euclidean"].compare_scenario(8)
        with pytest.raises(ValueError, match="staleness=0 only"):
            simulate(
                scn, strategy="euclidean", scheduler="async-lcm",
                staleness=1, seed=1,
            )

    def test_byzantine_rate_is_not_an_async_lcm_option(self):
        with pytest.raises(TypeError, match="unknown options"):
            simulate(
                ring(8), scheduler="async-lcm", byzantine_rate=0.1,
                seed=1,
            )

    @pytest.mark.parametrize("bad", [-1, True, 1.5])
    def test_invalid_staleness_rejected(self, bad):
        with pytest.raises(ValueError, match="staleness"):
            simulate(ring(8), scheduler="async-lcm", staleness=bad)


class TestByzantine:
    def test_runs_are_seed_deterministic(self):
        kwargs = dict(
            scheduler="ssync-faulty", byzantine_rate=0.2, seed=1,
            activation_p=0.9, check_connectivity=False,
            record_trajectory=True, max_rounds=300,
        )
        r1 = simulate(ring(24), **kwargs)
        r2 = simulate(ring(24), **kwargs)
        assert digest(r1) == digest(r2)
        assert r1.byzantine_actions is not None
        assert r1.byzantine_actions > 0
        assert len(r1.events.of_kind("byzantine")) > 0

    def test_events_carry_marked_payload(self):
        result = simulate(
            ring(24), scheduler="ssync-faulty", byzantine_rate=0.2,
            seed=1, check_connectivity=False, max_rounds=300,
        )
        for event in result.events.of_kind("byzantine"):
            assert event.data["behavior"] in BYZANTINE_BEHAVIORS
            assert len(event.data["robots"]) >= 1

    def test_counter_is_none_without_byzantine_robots(self):
        result = simulate(
            ring(16), scheduler="ssync-faulty", sleep_rate=0.2,
            seed=2, check_connectivity=False, max_rounds=300,
        )
        assert result.byzantine_actions is None
        assert len(result.events.of_kind("byzantine")) == 0

    def test_self_clocked_programs_rejected(self):
        scn = STRATEGIES["euclidean"].compare_scenario(8)
        with pytest.raises(ValueError, match="grid-state"):
            simulate(
                scn, strategy="euclidean", scheduler="ssync-faulty",
                byzantine_rate=0.5, seed=1,
            )

    def test_tolerant_strategy_accepts_byzantine(self):
        result = simulate(
            ring(24), strategy="tolerant", scheduler="ssync-faulty",
            byzantine_rate=0.1, seed=1, check_connectivity=False,
            max_rounds=500,
        )
        assert result.byzantine_actions is not None


class TestFaultInjectorChurn:
    """Satellite: draws are invariant under roster churn — removing
    robots (merges, crashes) never shifts the survivors' schedule."""

    ROSTER = list(range(12))
    SURVIVORS = [0, 2, 3, 7, 11]

    def test_roster_churn_does_not_shift_draws(self):
        inj = FaultInjector(
            sleep_rate=0.35, crash_rate=0.15, seed=9,
            byzantine_rate=0.25,
        )
        survivors = set(self.SURVIVORS)
        for r in range(20):
            sleep_full, crash_full = inj.draw(r, self.ROSTER)
            sleep_sub, crash_sub = inj.draw(r, self.SURVIVORS)
            assert sleep_sub == sleep_full & survivors, f"round {r}"
            assert crash_sub == crash_full & survivors, f"round {r}"

    def test_byzantine_roles_are_churn_invariant(self):
        inj = FaultInjector(byzantine_rate=0.4, seed=9)
        full = inj.byzantine_tokens(self.ROSTER)
        sub = inj.byzantine_tokens(self.SURVIVORS)
        assert sub == [t for t in full if t in self.SURVIVORS]

    def test_fault_classes_draw_independently(self):
        # Enabling byzantine/crash draws must not perturb the sleep
        # schedule (each class owns its own keyed stream).
        sleep_only = FaultInjector(sleep_rate=0.3, seed=4)
        all_on = FaultInjector(
            sleep_rate=0.3, crash_rate=0.2, byzantine_rate=0.5, seed=4
        )
        for r in range(10):
            assert (
                sleep_only.draw(r, self.ROSTER)[0]
                == all_on.draw(r, self.ROSTER)[0]
            ), f"round {r}"

    def test_non_int_tokens_draw_deterministically(self):
        inj = FaultInjector(byzantine_rate=0.5, seed=1)
        assert inj.is_byzantine("node-3") == inj.is_byzantine("node-3")
        behaviors = {
            inj.byzantine_behavior(r, "node-3") for r in range(50)
        }
        assert behaviors <= set(BYZANTINE_BEHAVIORS)

    def test_offsets_stay_king_moves(self):
        inj = FaultInjector(byzantine_rate=1.0, seed=7)
        for r in range(25):
            dx, dy = inj.byzantine_offset(r, 3)
            assert max(abs(dx), abs(dy)) == 1


class TestTolerantVariant:
    def test_registered_with_full_scheduler_matrix(self):
        strat = STRATEGIES["tolerant"]
        for scheduler in ("fsync", "ssync", "ssync-faulty", "async-lcm"):
            assert scheduler in strat.schedulers

    def test_gathers_like_stock_under_fsync(self):
        stock = simulate(ring(12), strategy="grid")
        tolerant = simulate(ring(12), strategy="tolerant")
        assert tolerant.gathered
        assert tolerant.rounds >= stock.rounds  # filter only defers

    def test_certified_unbreakable_where_stock_is_not(self):
        tolerant = run_certification(4, 3, strategy="tolerant")
        assert tolerant["strategy"] == "tolerant"
        assert tolerant["overall_ok"]
        for row in tolerant["rows"]:
            assert row["complete"], row
            assert row["breakable_shapes"] == 0, row
        stock = run_certification(4, 4, verify=False)
        (stock_row,) = stock["rows"]
        assert stock_row["breakable_shapes"] == 16  # golden, n=4


class TestD4Symmetry:
    def test_certification_verdicts_match_translation(self):
        exact = run_certification(4, 3, verify=False)
        folded = run_certification(4, 3, verify=False, symmetry="d4")
        assert folded["symmetry"] == "d4"
        for row_e, row_d in zip(exact["rows"], folded["rows"]):
            for key in VERDICT_KEYS:
                assert row_e[key] == row_d[key], key

    def test_d4_dag_is_never_larger(self):
        exact = explore(L_TETROMINO)
        folded = explore(L_TETROMINO, symmetry="d4")
        assert folded.counts()["total"] <= exact.counts()["total"]
        assert folded.complete and exact.complete

    def test_witness_reconstruction_refuses_d4_dags(self):
        dag = explore(L_TETROMINO, symmetry="d4")
        broken = dag.nodes_of_status("disconnected")
        assert broken  # the L-tetromino is stock-breakable
        with pytest.raises(ValueError, match="translation"):
            build_witness(dag, target=broken[0].key)

    def test_unknown_symmetry_rejected(self):
        with pytest.raises(ValueError, match="symmetry"):
            explore(L_TETROMINO, symmetry="rot90")
