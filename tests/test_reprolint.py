"""reprolint: fixture-backed rule tests + the live-tree meta-test.

Each rule family gets three kinds of fixtures: code that must fire,
code that must stay quiet, and a suppressed occurrence that must be
honored (with its reason) — so a rule regression shows up as a failing
fixture, not as silent CI noise.  The meta-test at the bottom runs the
default configuration over the real tree: introducing, say, a
``random.random()`` call in ``src/repro`` or a ``self.`` write in
``_plan_one``'s call graph fails tier-1, not just the CI lint job.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path
from typing import List, Optional, Sequence

from tools.reprolint.engine import (
    Finding,
    Runner,
    SourceFile,
    collect_files,
)
from tools.reprolint.rules import default_rules
from tools.reprolint.rules.asserts import BareAssertRule
from tools.reprolint.rules.determinism import (
    ORDER_SENSITIVE_PREFIXES,
    WALL_CLOCK_ALLOWED_PREFIXES,
    IdOrderingWallClockRule,
    UnorderedIterationRule,
    UnseededRandomRule,
)
from tools.reprolint.rules.events_docs import (
    EventDocsCrossCheckRule,
    documented_kinds,
)
from tools.reprolint.rules.facade import (
    LegacyEntryPointRule,
    SchedulerOptionNamesRule,
)
from tools.reprolint.rules.purity import SharedStatePurityRule

REPO = Path(__file__).resolve().parent.parent


def sf(rel: str, code: str) -> SourceFile:
    """A SourceFile fixture from a snippet (no file on disk needed)."""
    return SourceFile(REPO / rel, rel, textwrap.dedent(code))


def run_file_rule(rule, rel: str, code: str) -> List[Finding]:
    source = sf(rel, code)
    assert rule.applies(rel), f"{rule.rule_id} should apply to {rel}"
    return rule.check_file(source)


# ----------------------------------------------------------------------
# D1 — seeded RNG only
# ----------------------------------------------------------------------
class TestD1UnseededRandom:
    def test_fires_on_module_random(self):
        findings = run_file_rule(
            UnseededRandomRule(),
            "src/repro/core/example.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "D1"
        assert "random.random" in findings[0].message

    def test_fires_on_from_import(self):
        findings = run_file_rule(
            UnseededRandomRule(),
            "src/repro/core/example.py",
            "from random import shuffle\n",
        )
        assert len(findings) == 1

    def test_fires_on_numpy_random(self):
        findings = run_file_rule(
            UnseededRandomRule(),
            "src/repro/core/example.py",
            """
            import numpy as np

            def noise():
                return np.random.rand()
            """,
        )
        assert len(findings) == 1

    def test_fires_on_module_level_rng_instance(self):
        findings = run_file_rule(
            UnseededRandomRule(),
            "src/repro/core/example.py",
            """
            import random

            _RNG = random.Random(0)
            """,
        )
        assert len(findings) == 1
        assert "module" in findings[0].message.lower()

    def test_quiet_on_threaded_rng(self):
        findings = run_file_rule(
            UnseededRandomRule(),
            "src/repro/core/example.py",
            """
            import random

            def plan(seed):
                rng = random.Random(seed)
                return rng.randrange(4)
            """,
        )
        assert findings == []

    def test_out_of_scope_path_ignored(self):
        assert not UnseededRandomRule().applies("tools/whatever.py")


# ----------------------------------------------------------------------
# D2 — wall clock / id() ordering
# ----------------------------------------------------------------------
class TestD2WallClockIdOrder:
    def test_fires_on_time_time(self):
        findings = run_file_rule(
            IdOrderingWallClockRule(),
            "src/repro/engine/example.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "D2"

    def test_fires_on_datetime_now(self):
        findings = run_file_rule(
            IdOrderingWallClockRule(),
            "src/repro/core/example.py",
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
        )
        assert len(findings) == 1

    def test_fires_on_id_sort_key(self):
        findings = run_file_rule(
            IdOrderingWallClockRule(),
            "src/repro/core/example.py",
            "def order(xs):\n    return sorted(xs, key=id)\n",
        )
        assert len(findings) == 1
        assert "id(" in findings[0].message or "id" in findings[0].message

    def test_quiet_on_id_dict_key(self):
        findings = run_file_rule(
            IdOrderingWallClockRule(),
            "src/repro/core/example.py",
            """
            def group(xs):
                seen = {}
                for x in xs:
                    seen[id(x)] = x
                return seen
            """,
        )
        assert findings == []


class TestD2ServiceWallClockAllowlist:
    """The per-path allowlist for the serving layer's timestamps.

    The production D2 instance widens to ``src/repro/service/`` but
    exempts exactly that layer's wall-clock reads; these tests pin
    both halves of the boundary so a careless config edit (dropping
    core/ from the prefixes, or allowlisting a simulation layer)
    fails tier-1.
    """

    @staticmethod
    def production_rule() -> IdOrderingWallClockRule:
        for rule in default_rules():
            if isinstance(rule, IdOrderingWallClockRule):
                return rule
        raise AssertionError("D2 missing from default_rules()")

    def test_service_wall_clock_is_allowed(self):
        findings = run_file_rule(
            self.production_rule(),
            "src/repro/service/example.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert findings == []

    def test_service_id_ordering_still_fires(self):
        findings = run_file_rule(
            self.production_rule(),
            "src/repro/service/example.py",
            "def order(xs):\n    return sorted(xs, key=id)\n",
        )
        assert len(findings) == 1
        assert findings[0].rule == "D2"

    def test_core_engine_grid_remain_fully_covered(self):
        rule = self.production_rule()
        clock = """
            import time

            def stamp():
                return time.time()
            """
        for prefix in (
            "src/repro/core/",
            "src/repro/engine/",
            "src/repro/grid/",
        ):
            findings = run_file_rule(rule, prefix + "example.py", clock)
            assert len(findings) == 1, prefix
            assert findings[0].rule == "D2"

    def test_allowlist_is_exactly_the_service_layer(self):
        rule = self.production_rule()
        assert rule.wall_clock_allow == ("src/repro/service/",)
        assert rule.wall_clock_allow == WALL_CLOCK_ALLOWED_PREFIXES
        for prefix in ORDER_SENSITIVE_PREFIXES:
            assert prefix in rule.prefixes
        assert not any(
            prefix.startswith(rule.wall_clock_allow)
            for prefix in ORDER_SENSITIVE_PREFIXES
        )


# ----------------------------------------------------------------------
# D3 — unordered iteration into ordered sinks
# ----------------------------------------------------------------------
class TestD3UnorderedIteration:
    def test_fires_on_list_of_set(self):
        findings = run_file_rule(
            UnorderedIterationRule(),
            "src/repro/engine/example.py",
            """
            def freeze(cells: set):
                return list(cells)
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "D3"

    def test_fires_on_loop_append_over_dict_keys(self):
        findings = run_file_rule(
            UnorderedIterationRule(),
            "src/repro/core/example.py",
            """
            def collect(table):
                out = []
                for k in table.keys():
                    out.append(k)
                return out
            """,
        )
        assert len(findings) == 1

    def test_quiet_when_sorted(self):
        findings = run_file_rule(
            UnorderedIterationRule(),
            "src/repro/core/example.py",
            """
            def freeze(cells: set):
                return sorted(cells)

            def order_insensitive(cells: set):
                return len(cells), sum(x for x, _ in cells)
            """,
        )
        assert findings == []

    def test_suppression_is_honored(self):
        code = (
            "def freeze(cells: set):\n"
            "    # reprolint: ok[D3] consumed order-insensitively\n"
            "    return list(cells)\n"
        )
        report = _run_snippet("src/repro/engine/example.py", code)
        assert report.active == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].reason == "consumed order-insensitively"

    def test_suppression_without_reason_is_a_finding(self):
        code = (
            "def freeze(cells: set):\n"
            "    return list(cells)  # reprolint: ok[D3]\n"
        )
        report = _run_snippet("src/repro/engine/example.py", code)
        assert any("reason" in f.message for f in report.active)


# ----------------------------------------------------------------------
# P1 — purity of the sharded planner
# ----------------------------------------------------------------------
PURE_PLANNER = """
def helper(ctx):
    acc = []
    acc.append(ctx[0])
    return acc


class RunManager:
    def _fold_target(self, rid):
        return helper((rid,))

    def _plan_one(self, rid, occupied):
        local = {}
        local[rid] = self._fold_target(rid)
        return local
"""

IMPURE_SELF_WRITE = """
class RunManager:
    def _plan_one(self, rid, occupied):
        self.cache = rid
        return rid
"""

IMPURE_TRANSITIVE = """
class RunManager:
    def _bump(self, occupied):
        occupied.add((0, 0))

    def _plan_one(self, rid, occupied):
        self._bump(occupied)
        return rid
"""


def _purity_findings(code: str) -> List[Finding]:
    rule = SharedStatePurityRule(
        entries=(("src/repro/core/fixture.py", "RunManager._plan_one"),),
        follow_prefixes=("src/repro/core/",),
    )
    return rule.check_project(
        [sf("src/repro/core/fixture.py", code)], REPO
    )


class TestP1Purity:
    def test_quiet_on_pure_planner(self):
        assert _purity_findings(PURE_PLANNER) == []

    def test_fires_on_self_write(self):
        findings = _purity_findings(IMPURE_SELF_WRITE)
        assert len(findings) == 1
        assert "self" in findings[0].message

    def test_fires_transitively_with_chain(self):
        findings = _purity_findings(IMPURE_TRANSITIVE)
        assert len(findings) == 1
        assert "_plan_one -> self._bump" in findings[0].message
        assert "parameter `occupied`" in findings[0].message

    def test_stale_entry_point_is_reported(self):
        findings = _purity_findings("X = 1\n")
        assert len(findings) == 1
        assert "not found" in findings[0].message


# ----------------------------------------------------------------------
# F1 — facade discipline
# ----------------------------------------------------------------------
class TestF1Facade:
    def test_fires_on_legacy_import(self):
        findings = run_file_rule(
            LegacyEntryPointRule(),
            "src/repro/viz/example.py",
            "from repro.core.algorithm import gather\n",
        )
        assert len(findings) == 1
        assert findings[0].rule == "F1"
        assert "simulate" in findings[0].message

    def test_quiet_inside_shim_surface(self):
        rule = LegacyEntryPointRule()
        assert not rule.applies("src/repro/baselines/chain.py")
        assert not rule.applies("src/repro/__init__.py")

    def test_quiet_on_facade_import(self):
        findings = run_file_rule(
            LegacyEntryPointRule(),
            "src/repro/viz/example.py",
            "from repro.api import simulate\n",
        )
        assert findings == []

    def test_fires_on_scheduler_without_option_names(self):
        findings = run_file_rule(
            SchedulerOptionNamesRule(),
            "src/repro/example.py",
            """
            @register_scheduler
            class BadScheduler:
                key = "bad"
            """,
        )
        assert len(findings) == 1
        assert "option_names" in findings[0].message

    def test_quiet_when_base_class_declares(self):
        findings = run_file_rule(
            SchedulerOptionNamesRule(),
            "src/repro/example.py",
            """
            class Base:
                option_names = ("a",)

            @register_scheduler
            class GoodScheduler(Base):
                key = "good"
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# E1 — event docs cross-check
# ----------------------------------------------------------------------
EMITTING_ENGINE = """
class Engine:
    def run(self, done):
        self.events.emit(0, "merge", removed=1)
        self.events.emit(1, "gathered" if done else "budget_exhausted")
"""


def _e1(doc_text: Optional[str], code: str, tmp_path) -> List[Finding]:
    doc_rel = "docs/fixture_events.md"
    if doc_text is not None:
        (tmp_path / "docs").mkdir(exist_ok=True)
        (tmp_path / doc_rel).write_text(textwrap.dedent(doc_text))
    rule = EventDocsCrossCheckRule(
        code_prefixes=("src/repro/engine/",), doc_path=doc_rel
    )
    return rule.check_project(
        [sf("src/repro/engine/fixture.py", code)], tmp_path
    )


GOOD_DOC = """
<!-- reprolint: event-table -->
| kind | data |
|------|------|
| `merge` | `removed` |
| `gathered` | — |
| `budget_exhausted` | — |
<!-- /reprolint: event-table -->
"""


class TestE1EventDocs:
    def test_quiet_when_in_sync(self, tmp_path):
        assert _e1(GOOD_DOC, EMITTING_ENGINE, tmp_path) == []

    def test_fires_on_undocumented_kind(self, tmp_path):
        doc = GOOD_DOC.replace("| `merge` | `removed` |\n", "")
        findings = _e1(doc, EMITTING_ENGINE, tmp_path)
        assert len(findings) == 1
        assert "`merge`" in findings[0].message
        assert findings[0].path == "src/repro/engine/fixture.py"

    def test_fires_on_stale_doc_row(self, tmp_path):
        doc = GOOD_DOC.replace(
            "| `merge` |", "| `merge` |\n| `vanished` |"
        )
        findings = _e1(doc, EMITTING_ENGINE, tmp_path)
        assert len(findings) == 1
        assert "`vanished`" in findings[0].message
        assert findings[0].path == "docs/fixture_events.md"

    def test_fires_on_unresolvable_kind(self, tmp_path):
        code = """
        class Engine:
            def run(self, kind):
                self.events.emit(0, kind)
        """
        findings = _e1(GOOD_DOC, textwrap.dedent(code), tmp_path)
        assert len(findings) >= 1
        assert "statically resolvable" in findings[0].message

    def test_resolves_local_literal_assignments(self, tmp_path):
        code = """
        class Engine:
            def run(self, ok):
                kind = "merge" if ok else "gathered"
                self.events.emit(0, kind)
                self.events.emit(1, "budget_exhausted")
        """
        assert _e1(GOOD_DOC, textwrap.dedent(code), tmp_path) == []

    def test_fires_on_missing_markers(self, tmp_path):
        findings = _e1("| `merge` | x |\n", EMITTING_ENGINE, tmp_path)
        assert len(findings) == 1
        assert "marked table" in findings[0].message

    def test_documented_kinds_parser(self):
        kinds = documented_kinds(textwrap.dedent(GOOD_DOC))
        assert set(kinds) == {"merge", "gathered", "budget_exhausted"}


# ----------------------------------------------------------------------
# A1 — bare asserts
# ----------------------------------------------------------------------
class TestA1BareAssert:
    def test_fires_in_src(self):
        findings = run_file_rule(
            BareAssertRule(),
            "src/repro/core/example.py",
            "def f(x):\n    assert x is not None\n    return x\n",
        )
        assert len(findings) == 1
        assert findings[0].rule == "A1"
        assert "InvariantError" in findings[0].message

    def test_exempt_in_tests_and_benchmarks(self):
        rule = BareAssertRule()
        assert not rule.applies("tests/test_example.py")
        assert not rule.applies("benchmarks/bench_example.py")
        assert not rule.applies("src/repro/conftest.py")

    def test_quiet_on_raise(self):
        findings = run_file_rule(
            BareAssertRule(),
            "src/repro/core/example.py",
            """
            from repro.errors import InvariantError

            def f(x):
                if x is None:
                    raise InvariantError("x missing")
                return x
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# Runner plumbing
# ----------------------------------------------------------------------
def _run_snippet(rel: str, code: str):
    """Run the full default-rule Runner over one in-memory snippet."""

    class _OneFileRunner(Runner):
        def load(self, path: Path) -> SourceFile:
            return SourceFile(path, rel, code)

    runner = _OneFileRunner(
        [r for r in default_rules() if not hasattr(r, "check_project")],
        repo_root=REPO,
    )
    report = runner.run([REPO / rel])
    return report


class TestRunner:
    def test_report_is_sorted_and_json_ready(self):
        code = (
            "import random\n"
            "def f(cells: set):\n"
            "    random.seed(1)\n"
            "    return list(cells)\n"
        )
        report = _run_snippet("src/repro/core/example.py", code)
        lines = [(f.path, f.line) for f in report.active]
        assert lines == sorted(lines)
        data = report.as_json()
        assert data["ok"] is False
        assert set(data["counts_by_rule"]) >= {"D1", "D3"}

    def test_multi_rule_suppression(self):
        code = (
            "import random\n"
            "def f(cells: set):\n"
            "    # reprolint: ok[D1, D3] fixture exercising multi-ids\n"
            "    return list(cells) + [random.random()]\n"
        )
        report = _run_snippet("src/repro/core/example.py", code)
        assert report.active == []
        assert len(report.suppressed) == 2


# ----------------------------------------------------------------------
# The live tree
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_live_tree_is_clean(self):
        """The real codebase passes the default configuration.

        This is the meta-test the satellite demands: a `random.random()`
        in src/repro, a `self.` write reachable from `_plan_one`, a new
        undocumented event kind, or a bare assert in shipped code all
        fail HERE, inside tier-1.
        """
        runner = Runner(default_rules(), repo_root=REPO)
        paths = [REPO / "src", REPO / "tools", REPO / "benchmarks"]
        report = runner.run(paths)
        assert report.active == [], "\n" + "\n".join(
            f.render() for f in report.active
        )

    def test_every_live_suppression_has_a_reason(self):
        runner = Runner(default_rules(), repo_root=REPO)
        report = runner.run([REPO / "src", REPO / "tools", REPO / "benchmarks"])
        for f in report.suppressed:
            assert f.reason, f.render()

    def test_cli_exit_status_and_json(self, tmp_path):
        out = tmp_path / "report.json"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.reprolint",
                "src",
                "tools",
                "benchmarks",
                "--json",
                str(out),
            ],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert out.exists()

    def test_cli_list_rules(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "--list-rules"],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        for rid in ("D1", "D2", "D3", "P1", "F1", "E1", "A1"):
            assert rid in proc.stdout

    def test_collect_files_skips_caches(self):
        files = collect_files([REPO / "tools"], REPO)
        assert all("__pycache__" not in str(p) for p in files)
