"""The incremental start-site index vs the full contour scan.

The index (:class:`repro.core.quasiline.StartSiteIndex`) must report,
at every query, exactly the sites the full :func:`run_start_sites` scan
would find on the same contours — same robots, directions, stretch
vectors, predecessors, and the same canonical ordering (the ordering
feeds the greedy admission in ``RunManager.start_runs``, so it is part
of the bit-identical contract).  These tests drive it through engine
trajectories, through hand-built ring-set repairs (splits, merges,
fallbacks, reseeds), and check the order-label machinery it sorts with.
"""

from __future__ import annotations

import pytest

from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.core.quasiline import StartSiteIndex, run_start_sites
from repro.engine.scheduler import FsyncEngine
from repro.grid.occupancy import SwarmState
from repro.grid.ring import RingSet
from repro.swarms.generators import family, ring, solid_rectangle

CFG = AlgorithmConfig()


def canonical_sites(sites):
    """Admission-relevant site content in admission order."""
    return [
        (s.boundary_index, s.robot, s.direction, s.stretch_dir, s.prev)
        for s in sorted(
            sites, key=lambda s: (s.boundary_index, s.position, s.direction)
        )
    ]


def fresh_index(rs: RingSet) -> StartSiteIndex:
    idx = StartSiteIndex(CFG.start_straight_steps)
    rs.observer = idx
    return idx


def assert_sites_match(idx: StartSiteIndex, rs: RingSet):
    expected = canonical_sites(
        run_start_sites(rs.rings, CFG.start_straight_steps)
    )
    got = canonical_sites(idx.sites(rs))
    assert got == expected


class TestEngineDifferential:
    """Every round of a live trajectory: index == full scan."""

    @pytest.mark.parametrize(
        "fam,n", [("ring", 60), ("blob", 200), ("spiral", 160),
                  ("staircase", 61), ("tree", 80), ("solid", 144)]
    )
    def test_index_matches_full_scan(self, fam, n):
        ctrl = GatherOnGrid(CFG)
        eng = FsyncEngine(
            SwarmState(family(fam, n)), ctrl, check_connectivity=False
        )
        compared = 0
        for _ in range(300):
            if eng.state.is_gathered():
                break
            eng.step()
            pipe = ctrl._pipeline
            assert_sites_match(pipe.site_index, pipe.ring_set)
            compared += 1
        assert compared > 0


class TestRingSetRepair:
    """Index repair across the splice edge cases of tests/test_ring.py:
    the query after any sequence of updates must match the full scan."""

    def test_hole_opens_and_closes(self):
        old = set(solid_rectangle(5, 5))
        rs = RingSet.from_cells(old)
        idx = fresh_index(rs)
        assert_sites_match(idx, rs)
        new = old - {(2, 2)}
        rs.update(new, {(2, 2)})
        assert len(rs.rings) == 2  # reseeded hole: indexed on first query
        assert_sites_match(idx, rs)
        rs.update(old, {(2, 2)})
        assert len(rs.rings) == 1
        assert_sites_match(idx, rs)

    def test_contour_split_fallback(self):
        full = set(ring(6))
        gap = (3, 0)
        old = full - {gap}
        rs = RingSet.from_cells(old)
        idx = fresh_index(rs)
        assert_sites_match(idx, rs)
        rs.update(full, {gap})  # C -> O: full-rebuild fallback
        assert any(cid == -1 for cid, _, _ in rs.last_resplices)
        assert_sites_match(idx, rs)

    def test_contour_merge_fallback(self):
        full = set(ring(6))
        gap = (3, 0)
        rs = RingSet.from_cells(full)
        idx = fresh_index(rs)
        assert_sites_match(idx, rs)
        rs.update(full - {gap}, {gap})  # O -> C: fallback
        assert_sites_match(idx, rs)

    def test_anchor_cell_vacated(self):
        """Dirty arc spanning the canonical origin (head migration)."""
        old = set(solid_rectangle(5, 5))
        anchor_cell = min(old, key=lambda c: (c[1], c[0]))
        new = (old - {anchor_cell}) | {(2, 5)}
        rs = RingSet.from_cells(old)
        idx = fresh_index(rs)
        assert_sites_match(idx, rs)
        rs.update(new, {anchor_cell, (2, 5)})
        assert_sites_match(idx, rs)

    def test_queries_between_many_updates(self):
        """Marks accumulate across updates between queries (the lazy
        flush path) and across saturation of runner-dense contours."""
        ctrl = GatherOnGrid(CFG)
        eng = FsyncEngine(
            SwarmState(ring(16)), ctrl, check_connectivity=False
        )
        pipe = ctrl._pipeline
        for _burst in range(20):
            for _ in range(7):  # several updates per query
                if eng.state.is_gathered():
                    break
                eng.step()
            assert_sites_match(pipe.site_index, pipe.ring_set)

    def test_short_contours_are_skipped_like_the_scan(self):
        """Contours shorter than straight_steps + 2 yield no sites in
        either representation."""
        cells = {(0, 0), (1, 0), (1, 1)}
        rs = RingSet.from_cells(cells)
        idx = fresh_index(rs)
        assert idx.sites(rs) == []
        assert run_start_sites(rs.rings, CFG.start_straight_steps) == []


class TestOrderLabels:
    """The per-ring order labels the index sorts with."""

    @staticmethod
    def descents(ring_obj):
        nodes = list(ring_obj.iter_nodes())
        return sum(
            1
            for a, b in zip(nodes, nodes[1:] + nodes[:1])
            if a.order >= b.order
        )

    def test_single_descent_after_many_splices(self):
        ctrl = GatherOnGrid(CFG)
        eng = FsyncEngine(
            SwarmState(ring(24)), ctrl, check_connectivity=False
        )
        pipe = ctrl._pipeline
        for _ in range(60):
            if eng.state.is_gathered():
                break
            eng.step()
            for ring_obj in pipe.ring_set.rings:
                # exactly one wrap-around point on the label cycle
                assert self.descents(ring_obj) == 1

    def test_relabel_on_gap_exhaustion(self, monkeypatch):
        """With a unit starting gap, an arc that *grows* (vacating an
        edge cell notches the contour: more new sides than old) must
        relabel, and after a relabel the anchor ``a`` may legitimately
        label above ``b`` (``ring.head`` on the surviving ``b..a``
        path) — the splice must then take the descent-in-arc branch.
        Regression: a negative subdivision step here corrupted the label
        order.  Pins one descent per ring, canonical materialization,
        and index equivalence through relabel-heavy updates."""
        import repro.grid.ring as R

        monkeypatch.setattr(R, "_ORDER_GAP", 1)
        relabels = []
        orig = R.RingSet.__dict__["_relabel"].__func__

        def spy(ring_obj, gap=1):
            relabels.append(ring_obj.ring_id)
            return orig(ring_obj, gap)

        monkeypatch.setattr(R.RingSet, "_relabel", staticmethod(spy))
        cells = set(solid_rectangle(8, 3))
        rs = RingSet.from_cells(cells)
        idx = fresh_index(rs)
        assert_sites_match(idx, rs)
        for vac in [(4, 0), (1, 0), (6, 0)]:
            cells = cells - {vac}
            rs.update(cells, {vac})
            for ring_obj in rs.rings:
                assert self.descents(ring_obj) == 1
            assert_sites_match(idx, rs)
        assert relabels, "the unit gap must force at least one relabel"

    def test_single_descent_under_unit_gap_trajectory(self, monkeypatch):
        """Engine-driven: the label invariants survive a whole
        trajectory of splices when every gap is minimal."""
        import repro.grid.ring as R

        monkeypatch.setattr(R, "_ORDER_GAP", 1)
        ctrl = GatherOnGrid(CFG)
        eng = FsyncEngine(
            SwarmState(ring(24)), ctrl, check_connectivity=False
        )
        pipe = ctrl._pipeline
        for _ in range(80):
            if eng.state.is_gathered():
                break
            eng.step()
            for ring_obj in pipe.ring_set.rings:
                assert self.descents(ring_obj) == 1
            assert_sites_match(pipe.site_index, pipe.ring_set)

    def test_label_order_matches_cycle_order(self):
        """Sorting heads by the (wrap-split) label key reproduces the
        canonical robot cycle order — the property sites() relies on."""
        ctrl = GatherOnGrid(CFG)
        eng = FsyncEngine(
            SwarmState(ring(24)), ctrl, check_connectivity=False
        )
        pipe = ctrl._pipeline
        for _ in range(50):
            if eng.state.is_gathered():
                break
            eng.step()
            for ring_obj in pipe.ring_set.rings:
                n = len(ring_obj)
                if n < 2:
                    continue
                first = ring_obj.occurrence_head(ring_obj.head)
                cycle = [first] + ring_obj.walk_heads(first, 1, n - 1)
                o0 = first.order
                keys = [
                    (0, h.order) if h.order >= o0 else (1, h.order)
                    for h in cycle
                ]
                assert keys == sorted(keys)


class TestIndexedSiteShape:
    def test_sites_carry_nodes_and_dense_ranks(self):
        rs = RingSet.from_cells(set(ring(10)))
        idx = fresh_index(rs)
        sites = idx.sites(rs)
        assert sites, "a ring this size has quasi-line endpoints"
        for s in sites:
            assert s.node is not None
            assert s.node.cell == s.robot
        per_ring = {}
        for s in sites:
            per_ring.setdefault(s.boundary_index, []).append(s.position)
        for positions in per_ring.values():
            distinct = sorted(set(positions))
            assert distinct == list(range(len(distinct)))
