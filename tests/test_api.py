"""The unified simulation facade: registry, ``simulate()``, shims.

Three layers:

1. **Smoke matrix** — every registered strategy x every scheduler it
   declares, on a small instance of its worst-case family, asserting
   :class:`RunResult` field parity (metrics/events populated, terminal
   event present, JSON-able summary) across all workloads.
2. **Shim equivalence** — the legacy entry points are thin shims over
   ``simulate()``; their results must equal a direct facade call
   field-for-field (guards against drift if a shim stops delegating).
3. **Registry contract** — unknown keys and strategy/scheduler
   mismatches fail loudly; the public surface exports the facade.
"""

from __future__ import annotations

import io
import json

import pytest

import repro
from repro.api import SCHEDULERS, STRATEGIES, simulate
from repro.baselines.async_greedy import gather_async
from repro.baselines.chain import hairpin_chain, shorten_chain
from repro.baselines.closed_chain import gather_closed_chain, rectangle_chain
from repro.baselines.euclidean import gather_euclidean, worst_case_circle
from repro.baselines.global_grid import gather_global_with_moves
from repro.core.algorithm import gather
from repro.engine.protocols import RunResult, Scenario
from repro.swarms.generators import line, ring
from repro.trace.recorder import load_trace

#: Every (strategy, scheduler) pair the registry declares runnable.
MATRIX = sorted(
    (key, scheduler)
    for key, strat in STRATEGIES.items()
    for scheduler in strat.schedulers
)

SMOKE_N = 16


class TestSmokeMatrix:
    @pytest.mark.parametrize("key,scheduler", MATRIX)
    def test_every_strategy_scheduler_pair(self, key, scheduler):
        strat = STRATEGIES[key]
        result = simulate(
            strat.compare_scenario(SMOKE_N),
            strategy=key,
            scheduler=scheduler,
            check_connectivity=False,
            seed=1,
        )
        # uniform result surface
        assert isinstance(result, RunResult)
        assert result.strategy == key and result.scheduler == scheduler
        assert result.gathered, f"{key}/{scheduler} must gather at n=16"
        assert result.rounds >= 1
        assert 1 <= result.robots_final <= result.robots_initial
        assert result.merges_total == (
            result.robots_initial - result.robots_final
        )
        # metrics/events parity: one metrics row per round, a terminal
        # event, extras always carry the initial diameter
        assert len(result.metrics) == result.rounds
        assert len(result.events.of_kind("gathered")) == 1
        assert result.extras["initial_diameter"] >= 0
        # activations are counted by the async and ssync-family
        # schedulers (async-lcm included)
        assert (result.activations is not None) == (
            scheduler in ("async", "ssync", "ssync-faulty", "async-lcm")
        )
        json.dumps(result.summary())  # machine-readable by contract

    @pytest.mark.parametrize("key", sorted(STRATEGIES))
    def test_registry_metadata(self, key):
        strat = STRATEGIES[key]
        assert strat.key == key
        assert strat.default_scheduler in strat.schedulers
        assert all(s in SCHEDULERS for s in strat.schedulers)
        assert strat.description and strat.compare_label

    def test_trajectory_recording(self):
        result = simulate(ring(8), record_trajectory=True)
        assert result.trajectory is not None
        assert len(result.trajectory) == result.rounds
        assert result.trajectory[-1] == result.final_state.frozen()

    def test_trace_integration(self):
        buf = io.StringIO()
        result = simulate(
            Scenario(family="ring", n=24), trace=buf, max_rounds=5
        )
        lines = buf.getvalue().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "header"
        assert header["strategy"] == "grid"
        assert header["scheduler"] == "fsync"
        assert header["family"] == "ring"
        rows = load_trace(lines)
        assert len(rows) == result.rounds

    def test_trace_works_for_stepped_strategies(self):
        buf = io.StringIO()
        result = simulate(
            hairpin_chain(8), strategy="chain", trace=buf
        )
        rows = load_trace(buf.getvalue().splitlines())
        assert len(rows) == result.rounds
        assert len(rows[-1].cells) == result.robots_final

    def test_budget_exhaustion_is_terminal_event(self):
        result = simulate(ring(20), max_rounds=2)
        assert not result.gathered
        assert len(result.events.of_kind("budget_exhausted")) == 1

    def test_seed_changes_async_schedule_not_result_type(self):
        r1 = simulate(ring(10), strategy="async_greedy", seed=1)
        r2 = simulate(ring(10), strategy="async_greedy", seed=1)
        assert r1.rounds == r2.rounds
        assert r1.activations == r2.activations
        assert r1.final_state.frozen() == r2.final_state.frozen()


class TestShimEquivalence:
    """Legacy entry points must return exactly what the facade computes."""

    def test_gather_shim(self):
        legacy = gather(ring(10))
        direct = simulate(ring(10), strategy="grid")
        assert legacy.rounds == direct.rounds
        assert legacy.gathered == direct.gathered
        assert legacy.final_state.frozen() == direct.final_state.frozen()
        assert legacy.events.counts() == direct.events.counts()
        assert len(legacy.metrics) == len(direct.metrics)

    def test_gather_async_shim(self):
        legacy = gather_async(ring(10), seed=5)
        direct = simulate(ring(10), strategy="async_greedy", seed=5)
        assert legacy.rounds == direct.rounds
        assert legacy.activations == direct.activations
        assert legacy.final_state.frozen() == direct.final_state.frozen()
        assert legacy.events.counts() == direct.events.counts()

    def test_gather_euclidean_shim(self):
        pts = worst_case_circle(12)
        legacy = gather_euclidean(pts, record_diameter=True)
        direct = simulate(
            pts, strategy="euclidean", record_diameter=True
        )
        assert legacy.rounds == direct.rounds
        assert legacy.gathered == direct.gathered
        assert legacy.diameters == direct.extras["diameters"]
        assert len(direct.metrics) == direct.rounds

    def test_shorten_chain_shim(self):
        chain = hairpin_chain(12)
        legacy = shorten_chain(chain)
        direct = simulate(chain, strategy="chain")
        assert legacy.shortened == direct.gathered
        assert legacy.rounds == direct.rounds
        assert legacy.final_length == direct.extras["final_length"]
        assert legacy.optimal_length == direct.extras["optimal_length"]

    def test_gather_closed_chain_shim(self):
        chain = rectangle_chain(6, 6)
        legacy = gather_closed_chain(chain, seed=3)
        direct = simulate(chain, strategy="closed_chain", seed=3)
        assert legacy.gathered == direct.gathered
        assert legacy.rounds == direct.rounds
        assert legacy.robots_final == direct.robots_final

    def test_gather_global_shim(self):
        legacy, moves = gather_global_with_moves(line(20))
        direct = simulate(line(20), strategy="global")
        assert legacy.rounds == direct.rounds
        assert moves == direct.extras["total_moves"]
        assert legacy.final_state.frozen() == direct.final_state.frozen()


class TestRegistryContract:
    def test_unknown_strategy(self):
        with pytest.raises(KeyError, match="unknown strategy"):
            simulate(ring(8), strategy="nope")

    def test_unknown_scheduler(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            simulate(ring(8), scheduler="hsync")

    def test_incompatible_scheduler(self):
        with pytest.raises(ValueError, match="supports schedulers"):
            simulate(ring(8), strategy="grid", scheduler="async")

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError, match="unknown options"):
            simulate(ring(8), strategy="grid", view_range=2.0)

    def test_string_scenario_rejected(self):
        with pytest.raises(TypeError, match="ambiguous"):
            simulate("ring")

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            Scenario()
        with pytest.raises(ValueError):
            Scenario(family="ring")  # no n

    def test_chain_family_mismatch_is_loud(self):
        with pytest.raises(ValueError, match="hairpin"):
            simulate(Scenario(family="ring", n=12), strategy="chain")

    def test_public_surface_exports_facade(self):
        for name in (
            "simulate",
            "Scenario",
            "RunResult",
            "STRATEGIES",
            "SCHEDULERS",
        ):
            assert name in repro.__all__, f"{name} missing from __all__"
            assert hasattr(repro, name)
