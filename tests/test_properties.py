"""Property-based tests (hypothesis) for the core invariants.

Strategies build random *connected* swarms by seeded growth; the properties
are the paper's own guarantees:

1. connectivity is preserved by every round (checked by the engine);
2. the robot count never increases;
3. gathering completes within the linear budget;
4. the algorithm is deterministic;
5. merge decisions are locally computable within the viewing radius;
6. mergeless non-gathered swarms always offer run start sites (Lemma 1).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.progress import find_progress_sites, is_mergeless
from repro.core.algorithm import GatherOnGrid, gather
from repro.core.config import AlgorithmConfig
from repro.core.patterns import merge_move_for, plan_merges
from repro.core.view import LocalView
from repro.engine.scheduler import FsyncEngine
from repro.grid.connectivity import is_connected
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import random_blob, random_tree

CFG = AlgorithmConfig()

# -- strategies ---------------------------------------------------------
connected_swarms = st.builds(
    lambda n, seed, kind: (
        random_blob(n, seed) if kind else random_tree(n, seed)
    ),
    st.integers(min_value=2, max_value=60),
    st.integers(min_value=0, max_value=10_000),
    st.booleans(),
)

SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SLOW
@given(cells=connected_swarms)
def test_gathers_with_connectivity_every_round(cells):
    result = gather(cells, check_connectivity=True)
    assert result.gathered


@SLOW
@given(cells=connected_swarms)
def test_robot_count_monotone_nonincreasing(cells):
    counts = []
    engine = FsyncEngine(
        SwarmState(cells),
        GatherOnGrid(),
        on_round=lambda i, s: counts.append(len(s)),
    )
    engine.run()
    assert all(a >= b for a, b in zip(counts, counts[1:]))


@SLOW
@given(cells=connected_swarms)
def test_linear_round_budget(cells):
    n = len(cells)
    result = gather(cells, max_rounds=8 * n + 40)
    assert result.gathered, f"exceeded 8n+40 rounds for n={n}"


@settings(max_examples=20, deadline=None)
@given(cells=connected_swarms)
def test_determinism(cells):
    h1, h2 = [], []
    for h in (h1, h2):
        engine = FsyncEngine(
            SwarmState(cells),
            GatherOnGrid(),
            on_round=lambda i, s, hh=h: hh.append(s.frozen()),
        )
        engine.run(max_rounds=60)
    assert h1 == h2


@settings(max_examples=25, deadline=None)
@given(cells=connected_swarms)
def test_merge_decisions_are_local(cells):
    """Global planner == per-robot local recomputation, and the local
    recomputation never touches cells beyond the viewing radius (LocalView
    raises if it does)."""
    state = SwarmState(cells)
    moves, _ = plan_merges(state, CFG)
    for robot in cells:
        view = LocalView(state, robot, CFG.viewing_radius)
        assert merge_move_for(view, robot, CFG) == moves.get(robot)


@settings(max_examples=25, deadline=None)
@given(cells=connected_swarms)
def test_single_round_preserves_connectivity(cells):
    state = SwarmState(cells)
    ctrl = GatherOnGrid()
    moves = ctrl.plan_round(state, 0)
    state.apply_moves(moves)
    assert is_connected(state.cells)


@settings(max_examples=30, deadline=None)
@given(cells=connected_swarms)
def test_mergeless_swarms_offer_progress(cells):
    """Lemma 1: a mergeless, non-gathered swarm has run start sites."""
    state = SwarmState(cells)
    if state.is_gathered():
        return
    if is_mergeless(state, CFG):
        assert find_progress_sites(state, CFG), (
            "mergeless non-gathered swarm with no start sites "
            "(Lemma 1 violated)"
        )


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_async_baseline_gathers(n, seed):
    from repro.baselines.async_greedy import gather_async

    result = gather_async(random_blob(n, seed), seed=seed)
    assert result.gathered


@settings(max_examples=30, deadline=None)
@given(cells=connected_swarms)
def test_boundary_contours_partition_all_sides(cells):
    """Contour tracing is complete and exact: every (occupied cell, free
    neighbor) side appears on exactly one contour, consecutive contour
    robots are 8-adjacent, and exactly one contour is outer."""
    from repro.grid.boundary import extract_boundaries
    from repro.grid.geometry import DIRECTIONS4, add, chebyshev

    state = SwarmState(cells)
    occ = state.cells
    expected = {
        (c, d) for c in occ for d in DIRECTIONS4 if add(c, d) not in occ
    }
    seen = []
    boundaries = extract_boundaries(state)
    assert sum(b.is_outer for b in boundaries) == 1
    for b in boundaries:
        seen.extend(b.sides)
        n = len(b.robots)
        for i in range(n):
            assert chebyshev(b.robots[i], b.robots[(i + 1) % n]) <= 1
    assert len(seen) == len(expected)
    assert set(seen) == expected


@settings(max_examples=20, deadline=None)
@given(
    cells=st.builds(
        lambda n, seed: random_blob(n, seed),
        st.integers(min_value=3, max_value=14),
        st.integers(min_value=0, max_value=10_000),
    ),
    sched_seed=st.integers(min_value=0, max_value=10_000),
    p=st.floats(min_value=0.2, max_value=0.9),
)
def test_scripted_schedules_preserve_core_invariants(cells, sched_seed, p):
    """Schedule fuzz: under an arbitrary activation script the robot
    count never increases, and a connectivity violation ends the run
    that same round — as ``connectivity_lost``, or as ``gathered`` when
    the split state still fits the gathering box (two diagonal robots
    in a 2x2 bounding box; the engine checks gathering first)."""
    import random

    from repro.trace.replay import replay_schedule

    rng = random.Random(sched_seed)
    schedule = [
        tuple(t for t in range(len(cells)) if rng.random() < p)
        for _ in range(24)
    ]
    counts = []
    result = replay_schedule(
        sorted(cells),
        schedule,
        max_rounds=150,
        on_round=lambda i, s: counts.append(len(s)),
    )
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    violations = result.events.of_kind("connectivity_violation")
    lost = result.events.of_kind("connectivity_lost")
    assert len(violations) <= 1
    assert len(lost) <= len(violations)
    if violations:
        # the run stops at the violation round; gathering wins the
        # terminal when both predicates hold, otherwise the violation
        # must surface as the connectivity_lost terminal
        assert result.rounds == violations[0].round_index + 1
        if result.gathered:
            assert not lost
        else:
            assert len(lost) == 1
    else:
        assert not lost


@settings(max_examples=15, deadline=None)
@given(
    cells=st.builds(
        lambda n, seed: random_blob(n, seed),
        st.integers(min_value=3, max_value=14),
        st.integers(min_value=0, max_value=10_000),
    )
)
def test_full_activation_script_is_fsync(cells):
    """The all-tokens script is FSYNC: identical round count and
    identical per-round cells, for any connected seed."""
    from repro.trace.replay import replay_schedule

    cells = sorted(cells)
    frames_f, frames_s = [], []
    engine = FsyncEngine(
        SwarmState(cells),
        GatherOnGrid(),
        on_round=lambda i, s: frames_f.append(tuple(sorted(s.cells))),
    )
    fsync = engine.run(max_rounds=150)
    schedule = [tuple(range(len(cells)))] * fsync.rounds
    scripted = replay_schedule(
        cells,
        schedule,
        max_rounds=150,
        on_round=lambda i, s: frames_s.append(tuple(sorted(s.cells))),
    )
    assert scripted.gathered == fsync.gathered
    assert scripted.rounds == fsync.rounds
    assert frames_s == frames_f


@settings(max_examples=25, deadline=None)
@given(cells=connected_swarms)
def test_trace_replay_roundtrip(cells):
    """Recording a simulation and replaying it reproduces every round."""
    import io

    from repro.trace.recorder import TraceRecorder, load_trace
    from repro.trace.replay import verify_trace

    buf = io.StringIO()
    engine = FsyncEngine(
        SwarmState(cells), GatherOnGrid(), on_round=TraceRecorder(buf)
    )
    for _ in range(25):
        if engine.state.is_gathered():
            break
        engine.step()
    rows = load_trace(buf.getvalue().splitlines())
    assert verify_trace(cells, rows)
